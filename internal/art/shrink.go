package art

import "optiql/internal/locks"

// Structural cleanup after deletions. Removal itself happens in-place
// under the owner node's exclusive lock (write.go); when it leaves the
// node markedly under-populated, the deleter opportunistically tightens
// the structure, holding the parent and node (and, for path merges,
// the single remaining child) via upgrades:
//
//   - a node whose population drops below the capacity of the
//     next-smaller kind shrinks to it (Node256 -> Node48 -> Node16 ->
//     Node4), replacing the node and marking the original obsolete,
//     exactly like grow in reverse;
//   - a Node4 left with a single child re-applies path compression:
//     the parent slot is pointed at the child directly — a leaf as-is
//     (it carries its full key), an inner node as a copy whose prefix
//     absorbs the vanished node's prefix and branch byte.
//
// All of this is best-effort: any failed upgrade simply leaves the
// (correct, just unshrunk) structure for a later deleter, so the
// paths stay cheap under contention. Unlinked nodes are handed back to
// the caller for recycling once their locks are released.

// shrinkThreshold reports whether a node with n children of kind k is
// worth shrinking. Hysteresis (strictly below the smaller capacity)
// avoids flapping with concurrent inserts.
func shrinkWorthy(k kind, n int) bool {
	switch k {
	case kind16:
		return n <= 3
	case kind48:
		return n <= 12
	case kind256:
		return n <= 36
	case kind4:
		return n == 1
	}
	return false
}

// shrinkLocked replaces n (at pn.children[pb]) with a tighter
// representation; the caller holds both pn and n exclusively. The
// upgrade of pn is a non-blocking try even though n is already held,
// so there is no lock-order deadlock risk on this path. fn, when
// non-nil, is n itself, unlinked and to be recycled by the caller
// after releasing its lock; fc is a merged-away child whose lock has
// already been released.
func (t *Tree) shrinkLocked(c *locks.Ctx, pn *node, pb byte, n *node) (fn, fc *node) {
	if !shrinkWorthy(n.kind, n.numChildren) {
		return nil, nil
	}
	if n.kind == kind4 && n.numChildren == 1 {
		return t.compressPath(c, pn, pb, n)
	}
	if n.numChildren == 0 {
		// Fully emptied: clear the parent slot.
		pn.removeChild(pb)
		n.obsolete.Store(true)
		return n, nil
	}
	small := t.shrunk(c, n)
	pn.replaceChild(pb, ref{n: small})
	small.obsolete.Store(false)
	n.obsolete.Store(true)
	return n, nil
}

// shrunk builds the next-smaller-kind copy of n. Caller holds n
// exclusively.
func (t *Tree) shrunk(c *locks.Ctx, n *node) *node {
	var small *node
	switch n.kind {
	case kind16:
		small = t.newNode(c, kind4)
	case kind48:
		small = t.newNode(c, kind16)
	case kind256:
		small = t.newNode(c, kind48)
	default:
		panic("art: shrunk of Node4")
	}
	small.level = n.level
	small.prefixLen = n.prefixLen
	small.prefix = n.prefix
	switch n.kind {
	case kind16:
		for i := 0; i < n.numChildren; i++ {
			small.addChild(n.keys[i], n.children[i])
		}
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := n.keys[b]; idx != 0 {
				small.addChild(byte(b), n.children[idx-1])
			}
		}
	case kind256:
		for b := 0; b < 256; b++ {
			if !n.children[b].empty() {
				small.addChild(byte(b), n.children[b])
			}
		}
	}
	return small
}

// compressPath folds a single-child Node4 out of the tree. The parent
// and n are exclusively held; an inner-node child is additionally
// locked (upgrade from a fresh read) while its extended-prefix copy is
// made, then marked obsolete and released. Returns the unlinked nodes
// for the caller to recycle (n after its lock is released; the child's
// lock is released here).
func (t *Tree) compressPath(c *locks.Ctx, pn *node, pb byte, n *node) (fn, fc *node) {
	// Locate the single child and its branch byte.
	var cb byte
	var r ref
	switch {
	case n.numChildren != 1:
		return nil, nil
	default:
		cb = n.keys[0]
		r = n.children[0]
	}
	if r.l != nil {
		// Leaves carry their full key: the parent can point at the
		// leaf directly.
		pn.replaceChild(pb, r)
		n.obsolete.Store(true)
		return n, nil
	}
	child := r.n
	ctok, ok := child.lock.AcquireSh(c)
	if !ok {
		return nil, nil
	}
	if !child.lock.Upgrade(c, &ctok) {
		return nil, nil
	}
	// New prefix: n's prefix + the branch byte + child's prefix. The
	// total path of 8-byte keys never exceeds the prefix capacity.
	merged := t.newNode(c, child.kind)
	merged.level = n.level
	merged.prefixLen = n.prefixLen + 1 + child.prefixLen
	copy(merged.prefix[:], n.prefix[:n.prefixLen])
	merged.prefix[n.prefixLen] = cb
	copy(merged.prefix[n.prefixLen+1:], child.prefix[:child.prefixLen])
	merged.numChildren = child.numChildren
	copy(merged.keys, child.keys)
	copy(merged.children, child.children)
	pn.replaceChild(pb, ref{n: merged})
	merged.obsolete.Store(false)
	n.obsolete.Store(true)
	child.obsolete.Store(true)
	child.lock.ReleaseEx(c, ctok)
	return n, child
}
