package art

import (
	"optiql/internal/locks"
	"optiql/internal/obs"
)

// Update sets the value of an existing key, returning whether it was
// found. This is the operation Section 6.2 adapts most heavily:
//
//   - Under centralized optimistic locks the updater upgrades the leaf's
//     owner node and restarts from the root on failure — the behaviour
//     that collapses under contention.
//   - Under OptiQL the updater also upgrades (retaining the writer
//     queue on the lock word), but at a last-level node — one whose
//     children are all leaves at the final key byte — it blocks directly
//     on the lock, joining the FIFO queue instead of retrying. Sampled
//     upgrade failures feed the node's contention counter; past the
//     threshold the lazily-expanded path is materialized (contention
//     expansion) so future updaters find a last-level node to queue on.
//   - Under pessimistic schemes the updater releases its shared hold
//     and blocks for the exclusive lock, revalidating under it.
func (t *Tree) Update(c *locks.Ctx, k, v uint64) bool {
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	n := t.root
	level := 0
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	for {
		if checkPrefix(n, k, level) < n.prefixLen {
			if !n.lock.ReleaseSh(c, tok) {
				goto retry
			}
			return false // definitive miss
		}
		pos := level + n.prefixLen
		if pos >= 8 {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		b := keyByte(k, pos)
		r := n.findChild(b)
		if r.empty() {
			if !n.lock.ReleaseSh(c, tok) {
				goto retry
			}
			return false
		}
		if r.l != nil {
			// A key mismatch is a miss without taking any lock (subject
			// to validation, which also proves the leaf was live).
			if r.l.key != k {
				if !n.lock.ReleaseSh(c, tok) {
					goto retry
				}
				return false
			}
			// Found the owner node of the target slot.
			if !t.scheme.Optimistic || (t.scheme.QueueWriters && pos == 7) {
				found, done := t.updateDirect(c, n, tok, k, v)
				if done {
					return found
				}
				goto retry
			}
			if n.lock.Upgrade(c, &tok) {
				r.l.value = v
				n.lock.ReleaseEx(c, tok)
				return true
			}
			if t.scheme.QueueWriters {
				t.noteContention(c, n, k)
			}
			goto retry
		}
		child := r.n
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		n, tok = child, ctok
		level = pos + 1
	}
}

// updateDirect blocks for the node's exclusive lock and revalidates
// under it. With node recycling the blocking acquisition needs care:
// the node can be freed and reused for a different position while we
// wait, so traversal-time evidence ("n is on k's search path") only
// holds if the node's life did not change. sameLife captures that: the
// generation is read before validating the shared snapshot — a passing
// validation pins the generation to the life the traversal saw — and
// compared again under the exclusive lock. A definitive miss is
// reported only when sameLife holds; a found leaf with key k is always
// safe to write (a live node holding k's leaf owns the key's current
// slot, whatever life it is). Returns (found, done); done=false asks
// the caller to restart the traversal. The opportunistic read window
// (AOR) stays open through the revalidation and closes just before the
// value write.
func (t *Tree) updateDirect(c *locks.Ctx, n *node, tok locks.Token, k, v uint64) (bool, bool) {
	// Pessimistic schemes hold a real shared lock; drop it before
	// blocking for the exclusive one. For optimistic schemes this is a
	// validation — Algorithm 4 locks first and validates afterwards.
	gen := n.gen.Load()
	sameLife := n.lock.ReleaseSh(c, tok)
	wtok := n.lock.AcquireEx(c)
	if n.obsolete.Load() {
		n.lock.ReleaseEx(c, wtok)
		return false, false
	}
	sameLife = sameLife && n.gen.Load() == gen
	// n.level (immutable per life) replaces the traversal level, which
	// may belong to a previous life of the node.
	if checkPrefix(n, k, n.level) < n.prefixLen {
		n.lock.ReleaseEx(c, wtok)
		return false, sameLife
	}
	pos := n.level + n.prefixLen
	if pos >= 8 {
		n.lock.ReleaseEx(c, wtok)
		return false, false
	}
	r := n.findChild(keyByte(k, pos))
	switch {
	case r.l != nil && r.l.key == k:
		n.lock.CloseWindow(wtok)
		r.l.value = v
		n.lock.ReleaseEx(c, wtok)
		return true, true
	case r.n != nil:
		// The slot was expanded into a subtree while we blocked.
		n.lock.ReleaseEx(c, wtok)
		return false, false
	default:
		n.lock.ReleaseEx(c, wtok)
		return false, sameLife // miss, definitive only in the same life
	}
}

// noteContention records a sampled upgrade failure on n and triggers
// contention expansion once the threshold is crossed (Section 6.2).
func (t *Tree) noteContention(c *locks.Ctx, n *node, k uint64) {
	if !t.expand {
		return
	}
	if t.sampleInv > 1 && c.Rand()%uint64(t.sampleInv) != 0 {
		return
	}
	if n.contention.Add(1) < t.threshold {
		return
	}
	t.tryExpand(c, n, k)
}

// tryExpand materializes the lazily-expanded path under n's slot for k
// down to the last key-byte level, so that subsequent updaters can
// block on a last-level node instead of upgrade-retrying. No-op if the
// structure changed in the meantime. Like the direct paths it uses
// n.level, not the traversal level: once the obsolete check passes, the
// node is live, and expanding whatever leaf hangs at its slot is a
// sound transformation even if the node was recycled since traversal.
func (t *Tree) tryExpand(c *locks.Ctx, n *node, k uint64) {
	wtok := n.lock.AcquireEx(c)
	defer n.lock.ReleaseEx(c, wtok)
	if n.obsolete.Load() {
		return
	}
	if checkPrefix(n, k, n.level) < n.prefixLen {
		return
	}
	pos := n.level + n.prefixLen
	if pos >= 7 {
		return // already last level
	}
	b := keyByte(k, pos)
	r := n.findChild(b)
	if r.l == nil {
		return // already expanded, or slot emptied
	}
	l := r.l
	n.lock.CloseWindow(wtok)
	// Build a last-level node whose prefix absorbs the remaining bytes
	// of the leaf's key, then swing the slot to it.
	last := t.newNode(c, kind4)
	last.level = pos + 1
	last.prefixLen = 6 - pos
	for i := 0; i < last.prefixLen; i++ {
		last.prefix[i] = keyByte(l.key, pos+1+i)
	}
	last.addChild(keyByte(l.key, 7), ref{l: l})
	n.replaceChild(b, ref{n: last})
	last.obsolete.Store(false)
	n.contention.Store(0)
	t.expansions.Add(1)
	c.Counters().Inc(obs.EvARTExpand)
}

// Insert stores (k, v), returning true if the key was newly inserted
// and false if an existing key's value was overwritten.
func (t *Tree) Insert(c *locks.Ctx, k, v uint64) bool {
	if t.scheme.Optimistic {
		return t.insertOptimistic(c, k, v)
	}
	return t.insertPessimistic(c, k, v)
}

// insertOptimistic is the OLC-ART insert: traverse optimistically while
// remembering the parent's version token, then upgrade exactly the
// nodes a given case needs (parent+node for growth and prefix splits,
// node alone otherwise). Any upgrade failure restarts from the root.
// Replaced nodes are marked obsolete under their lock and recycled
// after the release (the release's version bump is what invalidates
// every reader that could still hold a stale pointer).
func (t *Tree) insertOptimistic(c *locks.Ctx, k, v uint64) bool {
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	var (
		pn   *node
		ptok locks.Token
		pb   byte
	)
	n := t.root
	level := 0
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	for {
		off := checkPrefix(n, k, level)
		if off < n.prefixLen {
			// Prefix split: replace n (in pn's slot pb) with a new
			// Node4 branching between n's trimmed copy and the new
			// leaf. The root has no prefix, so pn exists.
			if !pn.lock.Upgrade(c, &ptok) {
				goto retry
			}
			if !n.lock.Upgrade(c, &tok) {
				pn.lock.ReleaseEx(c, ptok)
				goto retry
			}
			np := t.newNode(c, kind4)
			np.level = n.level
			np.prefixLen = off
			copy(np.prefix[:], n.prefix[:off])
			trimmed := t.cloneTrimmed(c, n, off)
			np.addChild(n.prefix[off], ref{n: trimmed})
			np.addChild(keyByte(k, level+off), ref{l: t.newLeaf(c, k, v)})
			pn.replaceChild(pb, ref{n: np})
			np.obsolete.Store(false)
			trimmed.obsolete.Store(false)
			n.obsolete.Store(true)
			n.lock.ReleaseEx(c, tok)
			pn.lock.ReleaseEx(c, ptok)
			t.freeNode(c, n)
			t.size.Add(1)
			return true
		}
		pos := level + n.prefixLen
		if pos >= 8 {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		b := keyByte(k, pos)
		r := n.findChild(b)
		if r.empty() {
			if n.full() {
				// Grow n into the next kind; needs the parent to swing
				// its slot. The root (Node256) is never full.
				if !pn.lock.Upgrade(c, &ptok) {
					goto retry
				}
				if !n.lock.Upgrade(c, &tok) {
					pn.lock.ReleaseEx(c, ptok)
					goto retry
				}
				big := t.grow(c, n)
				big.addChild(b, ref{l: t.newLeaf(c, k, v)})
				pn.replaceChild(pb, ref{n: big})
				big.obsolete.Store(false)
				n.obsolete.Store(true)
				n.lock.ReleaseEx(c, tok)
				pn.lock.ReleaseEx(c, ptok)
				t.freeNode(c, n)
				t.size.Add(1)
				return true
			}
			if !n.lock.Upgrade(c, &tok) {
				goto retry
			}
			n.addChild(b, ref{l: t.newLeaf(c, k, v)})
			n.lock.ReleaseEx(c, tok)
			t.size.Add(1)
			return true
		}
		if r.l != nil {
			if r.l.key == k {
				// Upsert of an existing key.
				if !n.lock.Upgrade(c, &tok) {
					goto retry
				}
				r.l.value = v
				n.lock.ReleaseEx(c, tok)
				return false
			}
			// Lazy-expansion split: both keys share the path to pos;
			// branch them at their first diverging byte.
			if !n.lock.Upgrade(c, &tok) {
				goto retry
			}
			nn := t.lazySplit(c, r.l, k, v, pos)
			n.replaceChild(b, ref{n: nn})
			nn.obsolete.Store(false)
			n.lock.ReleaseEx(c, tok)
			t.size.Add(1)
			return true
		}
		child := r.n
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			goto retry
		}
		// Validate n but keep its token: it becomes the remembered
		// parent version for upgrades one level down.
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		pn, ptok, pb = n, tok, b
		n, tok = child, ctok
		level = pos + 1
	}
}

// insertPessimistic couples exclusive locks down the tree, holding the
// parent until the child is known not to need a parent-slot change.
func (t *Tree) insertPessimistic(c *locks.Ctx, k, v uint64) bool {
	var (
		pn   *node
		ptok locks.Token
		pb   byte
	)
	releaseParent := func() {
		if pn != nil {
			pn.lock.ReleaseEx(c, ptok)
			pn = nil
		}
	}
	n := t.root
	level := 0
	tok := n.lock.AcquireEx(c)
	for {
		off := checkPrefix(n, k, level)
		if off < n.prefixLen {
			np := t.newNode(c, kind4)
			np.level = n.level
			np.prefixLen = off
			copy(np.prefix[:], n.prefix[:off])
			trimmed := t.cloneTrimmed(c, n, off)
			np.addChild(n.prefix[off], ref{n: trimmed})
			np.addChild(keyByte(k, level+off), ref{l: t.newLeaf(c, k, v)})
			pn.replaceChild(pb, ref{n: np})
			np.obsolete.Store(false)
			trimmed.obsolete.Store(false)
			n.obsolete.Store(true)
			n.lock.ReleaseEx(c, tok)
			releaseParent()
			t.freeNode(c, n)
			t.size.Add(1)
			return true
		}
		pos := level + n.prefixLen
		b := keyByte(k, pos)
		r := n.findChild(b)
		if r.empty() {
			if n.full() {
				big := t.grow(c, n)
				big.addChild(b, ref{l: t.newLeaf(c, k, v)})
				pn.replaceChild(pb, ref{n: big})
				big.obsolete.Store(false)
				n.obsolete.Store(true)
				n.lock.ReleaseEx(c, tok)
				releaseParent()
				t.freeNode(c, n)
				t.size.Add(1)
				return true
			}
			n.addChild(b, ref{l: t.newLeaf(c, k, v)})
			n.lock.ReleaseEx(c, tok)
			releaseParent()
			t.size.Add(1)
			return true
		}
		if r.l != nil {
			inserted := true
			if r.l.key == k {
				r.l.value = v
				inserted = false
			} else {
				nn := t.lazySplit(c, r.l, k, v, pos)
				n.replaceChild(b, ref{n: nn})
				nn.obsolete.Store(false)
				t.size.Add(1)
			}
			n.lock.ReleaseEx(c, tok)
			releaseParent()
			return inserted
		}
		child := r.n
		ctok := child.lock.AcquireEx(c)
		releaseParent()
		pn, ptok, pb = n, tok, b
		n, tok = child, ctok
		level = pos + 1
	}
}

// cloneTrimmed copies n with its prefix cut after position off (the
// diverging byte n.prefix[off] becomes the branch byte in the new
// parent). Caller holds n exclusively; the copy sits one branch byte
// plus off levels deeper than n.
func (t *Tree) cloneTrimmed(c *locks.Ctx, n *node, off int) *node {
	cp := t.newNode(c, n.kind)
	cp.level = n.level + off + 1
	cp.prefixLen = n.prefixLen - off - 1
	copy(cp.prefix[:], n.prefix[off+1:n.prefixLen])
	cp.numChildren = n.numChildren
	copy(cp.keys, n.keys)
	copy(cp.children, n.children)
	return cp
}

// lazySplit builds the Node4 that separates existing leaf l from new
// key k; both agree on all bytes through pos and diverge at some later
// byte d <= 7.
func (t *Tree) lazySplit(c *locks.Ctx, l *leaf, k, v uint64, pos int) *node {
	d := pos + 1
	for keyByte(l.key, d) == keyByte(k, d) {
		d++
	}
	nn := t.newNode(c, kind4)
	nn.level = pos + 1
	nn.prefixLen = d - pos - 1
	for i := 0; i < nn.prefixLen; i++ {
		nn.prefix[i] = keyByte(k, pos+1+i)
	}
	nn.addChild(keyByte(l.key, d), ref{l: l})
	nn.addChild(keyByte(k, d), ref{l: t.newLeaf(c, k, v)})
	return nn
}

// Delete removes k, returning whether it was present. The entry is
// removed from its owner node in place; when the removal leaves the
// node markedly under-populated, the deleter opportunistically shrinks
// it to a smaller kind or re-applies path compression (shrink.go),
// using the remembered parent version exactly like insert's structural
// cases. Structural cleanup is skipped under pessimistic schemes
// (which cannot upgrade); their structure stays correct, just looser.
func (t *Tree) Delete(c *locks.Ctx, k uint64) bool {
	goto first
retry:
	c.Counters().Inc(obs.EvOpRestart)
	c.TraceRestart(k)
first:
	var (
		pn   *node
		ptok locks.Token
		pb   byte
	)
	n := t.root
	level := 0
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		goto retry
	}
	for {
		if checkPrefix(n, k, level) < n.prefixLen {
			if !n.lock.ReleaseSh(c, tok) {
				goto retry
			}
			return false
		}
		pos := level + n.prefixLen
		if pos >= 8 {
			n.lock.ReleaseSh(c, tok)
			goto retry
		}
		b := keyByte(k, pos)
		r := n.findChild(b)
		if r.empty() {
			if !n.lock.ReleaseSh(c, tok) {
				goto retry
			}
			return false
		}
		if r.l != nil {
			if r.l.key != k {
				if !n.lock.ReleaseSh(c, tok) {
					goto retry
				}
				return false
			}
			if t.scheme.Optimistic {
				if !n.lock.Upgrade(c, &tok) {
					goto retry
				}
				l := r.l
				n.removeChild(b)
				t.size.Add(-1)
				var fn, fc *node
				if pn != nil && shrinkWorthy(n.kind, n.numChildren) && pn.lock.Upgrade(c, &ptok) {
					fn, fc = t.shrinkLocked(c, pn, pb, n)
					pn.lock.ReleaseEx(c, ptok)
				}
				n.lock.ReleaseEx(c, tok)
				// All locks are dropped: recycle the removed leaf and
				// whatever the shrink unlinked (fn's lock was released
				// just above; fc's inside shrinkLocked).
				t.freeLeaf(c, l)
				if fn != nil {
					t.freeNode(c, fn)
				}
				if fc != nil {
					t.freeNode(c, fc)
				}
				return true
			}
			removed, done := t.deleteDirect(c, n, tok, k)
			if done {
				return removed
			}
			goto retry
		}
		child := r.n
		ctok, cok := child.lock.AcquireSh(c)
		if !cok {
			goto retry
		}
		if !n.lock.ReleaseSh(c, tok) {
			child.lock.ReleaseSh(c, ctok)
			goto retry
		}
		pn, ptok, pb = n, tok, b
		n, tok = child, ctok
		level = pos + 1
	}
}

// deleteDirect is updateDirect's counterpart for pessimistic removal;
// the same life-tracking discipline applies (see updateDirect).
func (t *Tree) deleteDirect(c *locks.Ctx, n *node, tok locks.Token, k uint64) (bool, bool) {
	gen := n.gen.Load()
	sameLife := n.lock.ReleaseSh(c, tok)
	wtok := n.lock.AcquireEx(c)
	if n.obsolete.Load() {
		n.lock.ReleaseEx(c, wtok)
		return false, false
	}
	sameLife = sameLife && n.gen.Load() == gen
	if checkPrefix(n, k, n.level) < n.prefixLen {
		n.lock.ReleaseEx(c, wtok)
		return false, sameLife
	}
	pos := n.level + n.prefixLen
	if pos >= 8 {
		n.lock.ReleaseEx(c, wtok)
		return false, false
	}
	b := keyByte(k, pos)
	r := n.findChild(b)
	switch {
	case r.l != nil && r.l.key == k:
		l := r.l
		n.removeChild(b)
		n.lock.ReleaseEx(c, wtok)
		t.freeLeaf(c, l)
		t.size.Add(-1)
		return true, true
	case r.n != nil:
		n.lock.ReleaseEx(c, wtok)
		return false, false
	default:
		n.lock.ReleaseEx(c, wtok)
		return false, sameLife
	}
}
