package art

import (
	"testing"

	"optiql/internal/core"
	"optiql/internal/locks"
)

var fuzzSchemes = []string{"OptiQL", "OptLock", "OptiQL-AOR", "pthread"}

// FuzzARTOps decodes the input as an op program — first byte picks a
// scheme, then two bytes per operation — and replays it against the
// tree and a map oracle. The op byte also selects between dense keys
// (shared prefixes, exercising path compression and the node-kind
// ladder) and sparse splitmix-spread keys (exercising lazy leaf
// splits); mixing both in one run hits the remerge paths hardest.
func FuzzARTOps(f *testing.F) {
	// Dense cluster growth then targeted deletes.
	f.Add([]byte{0, 0, 10, 0, 20, 0, 30, 0, 40, 4, 10, 4, 30, 8, 0})
	// Sparse keys: inserts, overwrite, delete, lookups.
	f.Add([]byte{1, 1, 5, 1, 5, 5, 5, 7, 9, 6, 5, 1, 6})
	// Dense/sparse interleaving over the same small byte range.
	f.Add([]byte{2, 0, 1, 1, 1, 0, 2, 1, 2, 4, 1, 5, 2, 10, 0, 11, 0})
	// SWAR edge lanes: drive one node through the kind ladder with
	// branch bytes at the byte-comparison boundaries (0x00, 0x01, 0x7f,
	// 0x80, 0xfe, 0xff) where an inexact zero detector would misfire,
	// then look up and delete across them at full Node16 occupancy.
	f.Add([]byte{0, 0, 0, 0, 1, 0, 127, 0, 128, 0, 254, 0, 255, 0, 63, 0, 64, 0, 65, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0, 7, 0, 8, 3, 128, 3, 255, 3, 0, 2, 127, 3, 128, 3, 126, 0, 9, 3, 9, 8, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		scheme := locks.MustByName(fuzzSchemes[int(data[0])%len(fuzzSchemes)])
		tr, err := New(Config{Scheme: scheme})
		if err != nil {
			t.Fatal(err)
		}
		c := locks.NewCtx(core.NewPool(64), 8)
		defer c.Close()
		oracle := make(map[uint64]uint64)
		for i := 1; i+1 < len(data); i += 2 {
			op, kb := data[i], uint64(data[i+1])
			// Even op groups use dense keys, odd groups sparse ones; both
			// ultimately index the same 256-slot logical space.
			k := kb
			if (op/6)%2 == 1 {
				k = sparse(kb)
			}
			v := uint64(i)
			switch op % 6 {
			case 0: // insert
				_, had := oracle[k]
				if got := tr.Insert(c, k, v); got != !had {
					t.Fatalf("step %d: Insert(%#x) new=%v, oracle says %v", i, k, got, !had)
				}
				oracle[k] = v
			case 1: // update
				_, had := oracle[k]
				if got := tr.Update(c, k, v); got != had {
					t.Fatalf("step %d: Update(%#x) found=%v, oracle says %v", i, k, got, had)
				}
				if had {
					oracle[k] = v
				}
			case 2: // delete
				_, had := oracle[k]
				if got := tr.Delete(c, k); got != had {
					t.Fatalf("step %d: Delete(%#x) found=%v, oracle says %v", i, k, got, had)
				}
				delete(oracle, k)
			case 3: // lookup
				want, had := oracle[k]
				got, ok := tr.Lookup(c, k)
				if ok != had || (had && got != want) {
					t.Fatalf("step %d: Lookup(%#x) = (%d, %v), oracle says (%d, %v)", i, k, got, ok, want, had)
				}
			case 4: // bounded scan from k
				max := int(kb%17) + 1
				out := tr.Scan(c, k, max, nil)
				if len(out) > max {
					t.Fatalf("step %d: scan(%#x, %d) returned %d pairs", i, k, max, len(out))
				}
				for j, kv := range out {
					if kv.Key < k || (j > 0 && kv.Key <= out[j-1].Key) {
						t.Fatalf("step %d: scan unsorted or out of range at %d", i, j)
					}
					if want, ok := oracle[kv.Key]; !ok || want != kv.Value {
						t.Fatalf("step %d: scan pair (%#x, %d), oracle says (%d, %v)", i, kv.Key, kv.Value, want, ok)
					}
				}
			case 5: // len check
				if tr.Len() != len(oracle) {
					t.Fatalf("step %d: Len() = %d, oracle has %d", i, tr.Len(), len(oracle))
				}
			}
		}
		checkInvariants(t, tr)
		// Final exhaustive comparison via full scan.
		all := tr.Scan(c, 0, len(oracle)+1, nil)
		if len(all) != len(oracle) {
			t.Fatalf("final scan has %d pairs, oracle %d", len(all), len(oracle))
		}
		for _, kv := range all {
			if want, ok := oracle[kv.Key]; !ok || want != kv.Value {
				t.Fatalf("final scan pair (%#x, %d), oracle says (%d, %v)", kv.Key, kv.Value, want, ok)
			}
		}
	})
}
