package art

import (
	"testing"

	"optiql/internal/core"
	"optiql/internal/indextest"
	"optiql/internal/locks"
)

// TestLookupAllocs pins the point-read alloc budget at zero: flat
// nodes keep the descent free of slice headers and the lock schemes
// keep their queue nodes in the Ctx, so a Lookup must not touch the
// heap at all.
func TestLookupAllocs(t *testing.T) {
	for _, scheme := range []string{"OptiQL", "OptLock", "MCS-RW"} {
		t.Run(scheme, func(t *testing.T) {
			indextest.SkipIfOptimisticRace(t, locks.MustByName(scheme))
			tr, err := New(Config{Scheme: locks.MustByName(scheme)})
			if err != nil {
				t.Fatal(err)
			}
			pool := core.NewPool(16)
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			for k := uint64(0); k < 10000; k++ {
				tr.Insert(c, k, k*3)
			}
			k := uint64(0)
			allocs := testing.AllocsPerRun(1000, func() {
				v, ok := tr.Lookup(c, k)
				if !ok || v != k*3 {
					t.Fatalf("Lookup(%d) = (%d, %v)", k, v, ok)
				}
				k = (k + 7919) % 10000
			})
			if allocs != 0 {
				t.Errorf("Lookup allocates %.1f objects per op, want 0", allocs)
			}
		})
	}
}

// TestScanAllocs pins the scan alloc budget: the walk's path and
// slot-snapshot scratch comes from a pool and the caller provides the
// output buffer, so steady-state scans stay off the heap. The budget
// is <1 rather than exactly 0 because a GC cycle during the run can
// empty the scratch pool and force one refill allocation.
func TestScanAllocs(t *testing.T) {
	scheme := locks.MustByName("OptiQL")
	indextest.SkipIfOptimisticRace(t, scheme)
	tr, err := New(Config{Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	pool := core.NewPool(16)
	c := locks.NewCtx(pool, 8)
	defer c.Close()
	for k := uint64(0); k < 10000; k++ {
		tr.Insert(c, k, k)
	}
	buf := make([]KV, 0, 64)
	k := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		out := tr.Scan(c, k, 16, buf[:0])
		if len(out) != 16 {
			t.Fatalf("Scan(%d) returned %d pairs", k, len(out))
		}
		k = (k + 7919) % 9000
	})
	if allocs >= 1 {
		t.Errorf("Scan allocates %.1f objects per op, want <1", allocs)
	}
}
