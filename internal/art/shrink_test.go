package art

import (
	"sync"
	"testing"

	"optiql/internal/indextest"
	"optiql/internal/locks"
	"optiql/internal/workload"
)

// TestShrinkThroughKinds grows one node through every kind and drains
// it back down, checking the representation tightens again.
func TestShrinkThroughKinds(t *testing.T) {
	tr, pool := newTree(t, "OptiQL")
	c := ctxFor(t, pool)
	base := uint64(0x1122334455667700)
	for i := uint64(0); i < 256; i++ {
		tr.Insert(c, base|i, i)
	}
	_, _, _, n256, _ := tr.NodeCounts()
	if n256 < 2 {
		t.Fatalf("population did not reach Node256: %d", n256)
	}
	// Drain down to 2 keys: the chain must shrink back below Node48.
	for i := uint64(2); i < 256; i++ {
		if !tr.Delete(c, base|i) {
			t.Fatalf("delete miss %d", i)
		}
	}
	checkInvariants(t, tr)
	n4, n16, n48, n256b, leaves := tr.NodeCounts()
	if leaves != 2 {
		t.Fatalf("leaves = %d, want 2", leaves)
	}
	if n256b != 1 { // only the root remains a Node256
		t.Fatalf("Node256 count = %d after drain (root only expected); n4=%d n16=%d n48=%d",
			n256b, n4, n16, n48)
	}
	for i := uint64(0); i < 2; i++ {
		if v, ok := tr.Lookup(c, base|i); !ok || v != i {
			t.Fatalf("lookup %d after shrink = (%d, %v)", i, v, ok)
		}
	}
}

// TestPathCompressionRemerge deletes one of two deep siblings and
// expects the surviving key's path to collapse back toward the root.
func TestPathCompressionRemerge(t *testing.T) {
	tr, pool := newTree(t, "OptiQL")
	c := ctxFor(t, pool)
	k1 := uint64(0xAABBCCDDEEFF0011)
	k2 := uint64(0xAABBCCDDEEFF0022) // diverges at the last byte
	tr.Insert(c, k1, 1)
	tr.Insert(c, k2, 2)
	n4Before, _, _, _, _ := tr.NodeCounts()
	if n4Before != 1 {
		t.Fatalf("expected one branching Node4, have %d", n4Before)
	}
	if !tr.Delete(c, k2) {
		t.Fatal("delete miss")
	}
	checkInvariants(t, tr)
	n4After, _, _, _, leaves := tr.NodeCounts()
	if leaves != 1 {
		t.Fatalf("leaves = %d", leaves)
	}
	if n4After != 0 {
		t.Fatalf("single-child Node4 not compressed away (%d remain)", n4After)
	}
	if v, ok := tr.Lookup(c, k1); !ok || v != 1 {
		t.Fatalf("survivor lookup = (%d, %v)", v, ok)
	}
	// Re-inserting the deleted key must still work via lazy split.
	tr.Insert(c, k2, 3)
	if v, ok := tr.Lookup(c, k2); !ok || v != 3 {
		t.Fatalf("re-insert lookup = (%d, %v)", v, ok)
	}
	checkInvariants(t, tr)
}

// TestShrinkUnderConcurrency drains most of a sparse population while
// other threads read and re-insert, then verifies full consistency.
func TestShrinkUnderConcurrency(t *testing.T) {
	indextest.SkipIfOptimisticRace(t, locks.MustByName("OptiQL"))
	tr, pool := newTree(t, "OptiQL")
	const n = 20000
	c0 := locks.NewCtx(pool, 8)
	for i := uint64(0); i < n; i++ {
		tr.Insert(c0, sparse(i), i)
	}
	c0.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			for i := uint64(g); i < n; i += 4 {
				if i%8 < 6 { // delete 3/4 of keys
					tr.Delete(c, sparse(i))
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			rng := workload.NewRNG(uint64(g) + 33)
			for i := 0; i < n; i++ {
				k := sparse(rng.Uint64n(n))
				if v, ok := tr.Lookup(c, k); ok && v >= n {
					t.Errorf("lookup returned foreign value %d", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	checkInvariants(t, tr)
	// Survivors must all resolve.
	c := ctxFor(t, pool)
	for i := uint64(0); i < n; i++ {
		_, ok := tr.Lookup(c, sparse(i))
		want := i%8 >= 6
		if ok != want {
			t.Fatalf("key %d present=%v want=%v", i, ok, want)
		}
	}
}

// TestShrinkSkippedForPessimistic confirms pessimistic schemes delete
// correctly without structural cleanup.
func TestShrinkSkippedForPessimistic(t *testing.T) {
	tr, pool := newTree(t, "pthread")
	c := ctxFor(t, pool)
	base := uint64(0x3344556677889900)
	for i := uint64(0); i < 32; i++ {
		tr.Insert(c, base|i, i)
	}
	for i := uint64(1); i < 32; i++ {
		if !tr.Delete(c, base|i) {
			t.Fatalf("delete miss %d", i)
		}
	}
	if v, ok := tr.Lookup(c, base); !ok || v != 0 {
		t.Fatalf("survivor lookup = (%d, %v)", v, ok)
	}
	checkInvariants(t, tr)
}
