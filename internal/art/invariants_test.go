package art

import (
	"testing"

	"optiql/internal/core"
	"optiql/internal/locks"
)

// checkInvariants walks the quiescent tree white-box and verifies:
//   - numChildren matches the populated slots of each node kind,
//   - Node48 indirection entries point at populated child slots,
//   - every leaf's key bytes reproduce exactly the path (branch bytes
//     and node prefixes) that leads to it,
//   - no node's prefix extends past the 8-byte key length,
//   - Len() equals the number of reachable leaves.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	leaves := 0
	var walk func(n *node, level int, path []byte)
	walk = func(n *node, level int, path []byte) {
		if level+n.prefixLen > 8 {
			t.Fatalf("prefix extends past key length at level %d (+%d)", level, n.prefixLen)
		}
		prefixedPath := append(append([]byte{}, path...), n.prefix[:n.prefixLen]...)
		pos := level + n.prefixLen

		visit := func(b byte, r ref) {
			childPath := append(append([]byte{}, prefixedPath...), b)
			if r.l != nil {
				leaves++
				for i, pb := range childPath {
					if keyByte(r.l.key, i) != pb {
						t.Fatalf("leaf %#x does not match its path at byte %d (path %x)", r.l.key, i, childPath)
					}
				}
				return
			}
			walk(r.n, pos+1, childPath)
		}

		populated := 0
		switch n.kind {
		case kind4, kind16:
			for i := 0; i < n.numChildren; i++ {
				if n.children[i].empty() {
					t.Fatal("counted slot is empty")
				}
				populated++
				visit(n.keys[i], n.children[i])
			}
			for i := n.numChildren; i < len(n.children); i++ {
				if !n.children[i].empty() {
					t.Fatal("slot beyond count is populated")
				}
			}
		case kind48:
			for b := 0; b < 256; b++ {
				idx := n.keys[b]
				if idx == 0 {
					continue
				}
				if int(idx) > len(n.children) || n.children[idx-1].empty() {
					t.Fatalf("Node48 indirection for byte %d points at empty slot", b)
				}
				populated++
				visit(byte(b), n.children[idx-1])
			}
		case kind256:
			for b := 0; b < 256; b++ {
				if n.children[b].empty() {
					continue
				}
				populated++
				visit(byte(b), n.children[b])
			}
		}
		if populated != n.numChildren {
			t.Fatalf("node kind %d: numChildren=%d but %d slots populated", n.kind, n.numChildren, populated)
		}
	}
	walk(tr.root, 0, nil)
	if leaves != tr.Len() {
		t.Fatalf("Len() = %d but %d leaves reachable", tr.Len(), leaves)
	}
}

func TestInvariantsAfterSequentialOps(t *testing.T) {
	tr, pool := newTree(t, "OptiQL")
	c := ctxFor(t, pool)
	for i := uint64(0); i < 5000; i++ {
		tr.Insert(c, sparse(i), i)
		tr.Insert(c, i, i) // dense interleaved
	}
	checkInvariants(t, tr)
	for i := uint64(0); i < 5000; i += 2 {
		tr.Delete(c, sparse(i))
		tr.Delete(c, i+1)
	}
	checkInvariants(t, tr)
}

// Concurrent invariant coverage lives in oracle_test.go: the shared
// indextest harness runs the mixed workload across all schemes (dense
// and sparse key layouts) and calls checkInvariants on the quiescent
// tree.

func TestInvariantsAfterExpansion(t *testing.T) {
	tr := MustNew(Config{
		Scheme:          locks.MustByName("OptiQL"),
		ExpandThreshold: 1,
		SampleInverse:   1,
	})
	pool := core.NewPool(64)
	c := ctxFor(t, pool)
	for i := uint64(0); i < 500; i++ {
		tr.Insert(c, sparse(i), i)
	}
	// Expand several hot paths explicitly.
	for i := uint64(0); i < 500; i += 50 {
		tr.noteContention(c, tr.root, sparse(i))
	}
	if tr.Expansions() == 0 {
		t.Fatal("no expansion happened")
	}
	checkInvariants(t, tr)
	for i := uint64(0); i < 500; i++ {
		if v, ok := tr.Lookup(c, sparse(i)); !ok || v != i {
			t.Fatalf("lookup %d after expansions = (%d, %v)", i, v, ok)
		}
	}
}
