package art

import "testing"

// TestCheckPrefixTornLength is the regression test for the torn-read
// hazard tornread flagged in checkPrefix: an optimistic reader can
// observe a stale or torn prefixLen that exceeds maxPrefix (the node
// is being replaced concurrently), and the prefix walk must stay
// inside the array instead of panicking. Version validation rejects
// the bogus comparison result afterwards; the clamp only has to keep
// the process alive.
func TestCheckPrefixTornLength(t *testing.T) {
	n := &node{kind: kind4, level: 0}
	n.prefixLen = maxPrefix + 1000 // torn: far past the array
	for i := range n.prefix {
		n.prefix[i] = 0xab
	}
	var k uint64
	for i := 0; i < maxPrefix; i++ {
		k |= uint64(0xab) << (56 - 8*i)
	}
	// Must not panic, and must stop at the array bound: every stored
	// byte matches, so the walk reports maxPrefix matches at most.
	got := checkPrefix(n, k, 0)
	if got > maxPrefix {
		t.Fatalf("checkPrefix walked past the prefix array: got %d, max %d", got, maxPrefix)
	}

	// A mismatching key still reports the first difference.
	n.prefixLen = maxPrefix + 7
	if got := checkPrefix(n, ^k, 0); got != 0 {
		t.Fatalf("mismatch at byte 0 must stop the walk, got %d", got)
	}

	// Sane lengths are unaffected by the clamp.
	n.prefixLen = 3
	if got := checkPrefix(n, k, 0); got != 3 {
		t.Fatalf("intact prefix of 3 must match 3 bytes, got %d", got)
	}
}
