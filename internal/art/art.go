// Package art implements the Adaptive Radix Tree [27] with the
// synchronization adaptations of Section 6.2 of the OptiQL paper:
// optimistic lock coupling [28] on every node, an upgrade interface
// that retains OptiQL's writer queue, direct (blocking) exclusive
// acquisition at last-level nodes, and contention expansion —
// materializing lazily-expanded paths whose leaves attract heavy
// updates so that updaters can queue on a last-level node instead of
// retrying upgrades.
//
// Keys are uint64, indexed big-endian one byte per level (at most 8
// levels). Values are uint64 payloads ("TIDs"). The tree supports the
// standard ART node kinds (Node4/16/48/256), path compression (a node
// stores the byte prefix it absorbs) and lazy expansion (a sub-path
// with a single key collapses into a leaf holding the full key).
//
// Structural invariants relied on for concurrency:
//   - A node's kind and prefix are immutable after publication.
//     Operations that would change them (growing a full node, splitting
//     a prefix) instead create replacement nodes, re-point the parent,
//     and mark the old node obsolete under its exclusive lock; its
//     version bump on release invalidates in-flight optimistic readers.
//   - Leaf keys are immutable while a leaf is reachable; only leaf
//     values are written, and only while the parent node (owner of the
//     child slot) is held exclusively. Readers validate the parent
//     version after reading.
//
// Nodes and leaves are recycled through per-kind free lists (node.go in
// the B+-tree has the same structure): a recycled object keeps its lock
// — and therefore its monotone version history — and its kind for life.
// Optimistic traversals acquire a child's version snapshot before
// validating the parent, so any snapshot a reader ends up trusting was
// taken while the node was still live; the exclusive release that
// precedes every free bumps the version and fails all later
// validations. The direct (blocking) paths, which skip that
// revalidation by design, instead check the obsolete flag under the
// lock and compare the per-life generation counter before treating
// anything they see as evidence about the traversed key's path.
package art

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"optiql/internal/locks"
	"optiql/internal/simd"
)

type kind uint8

const (
	kind4 kind = iota
	kind16
	kind48
	kind256
)

// maxPrefix is the longest byte prefix a node can absorb; with 8-byte
// keys a compressed path never exceeds 7 bytes.
const maxPrefix = 8

// leaf holds a full key and its value (written only under the parent
// node's exclusive lock). Leaves are pooled: the key is immutable only
// within one reachable life, so readers must validate the owner node
// before trusting either field.
type leaf struct {
	key   uint64
	value uint64
}

// ref is a tagged child slot: exactly one of n and l is non-nil, or
// both are nil for an empty slot.
type ref struct {
	n *node
	l *leaf
}

func (r ref) empty() bool { return r.n == nil && r.l == nil }

// node is the common header of every inner node. The keys/children
// slices alias inline arrays of the node's kind struct (one allocation
// per node); the slice headers, the lock and the kind are written once
// at construction and never change, even across recycled lives.
type node struct {
	lock locks.Lock
	kind kind
	// obsolete is true from construction until the node is published
	// into a parent slot, and set again (under the exclusive lock) when
	// the node is replaced or unlinked. Threads that acquired the lock
	// blockingly — the direct update path and contention expansion —
	// must check it before acting on anything else they read.
	obsolete atomic.Bool
	// level is the node's depth: the number of key bytes consumed
	// before its prefix. Immutable per life, written before publication;
	// the direct paths use it instead of the (possibly stale) traversal
	// level.
	level int
	// gen counts the node's lives; it is bumped on every reuse. The
	// direct paths compare it across their blocking acquisition to tell
	// whether traversal-time evidence still applies (write.go).
	gen atomic.Uint32
	// numChildren is read racily by optimistic traversals; all derived
	// indexing is clamped and validated by version checks.
	numChildren int
	prefixLen   int
	prefix      [maxPrefix]byte
	// contention counts sampled upgrade failures (Section 6.2); once it
	// passes the threshold the hot path below this node is materialized.
	contention atomic.Uint32
	// keys: kind4/16 → branch bytes parallel to children;
	// kind48 → 256-entry indirection (child index + 1, 0 = empty);
	// kind256 → unused.
	keys     []byte
	children []ref
}

// Flat node layout: one struct per kind embedding the header and the
// inline key/child arrays, mirroring the single-allocation C++ nodes
// the paper evaluates. The header's slices alias the arrays.
type (
	flat4 struct {
		n node
		k [4]byte
		c [4]ref
	}
	flat16 struct {
		n node
		k [16]byte
		c [16]ref
	}
	flat48 struct {
		n node
		k [256]byte
		c [48]ref
	}
	flat256 struct {
		n node
		c [256]ref
	}
)

// makeNode builds one node of the given kind as a single allocation.
func makeNode(k kind) *node {
	var n *node
	switch k {
	case kind4:
		x := new(flat4)
		x.n.keys, x.n.children = x.k[:], x.c[:]
		n = &x.n
	case kind16:
		x := new(flat16)
		x.n.keys, x.n.children = x.k[:], x.c[:]
		n = &x.n
	case kind48:
		x := new(flat48)
		x.n.keys, x.n.children = x.k[:], x.c[:]
		n = &x.n
	default:
		x := new(flat256)
		x.n.children = x.c[:]
		n = &x.n
	}
	n.kind = k
	return n
}

// Config parameterizes a Tree.
type Config struct {
	// Scheme selects the locking scheme; required, must support readers.
	Scheme *locks.Scheme
	// ExpandThreshold is the contention-counter value that triggers
	// contention expansion (default 1024, per the paper).
	ExpandThreshold uint32
	// SampleInverse is the inverse sampling probability for bumping the
	// contention counter (default 10, i.e. p = 0.1).
	SampleInverse uint32
	// DisableExpansion turns contention expansion off (ablation).
	DisableExpansion bool
}

// Tree is the concurrent adaptive radix tree.
type Tree struct {
	root       *node // a Node256 that is never replaced
	scheme     *locks.Scheme
	size       atomic.Int64
	expansions atomic.Int64
	threshold  uint32
	sampleInv  uint32
	expand     bool
	// nodeFree recycles replaced/unlinked nodes per kind (kind is
	// immutable for an object's whole lifetime; see package comment).
	nodeFree [4]*locks.Recycler
	leafFree *locks.Recycler
}

// New creates an empty tree.
func New(cfg Config) (*Tree, error) {
	if cfg.Scheme == nil {
		return nil, fmt.Errorf("art: Config.Scheme is required")
	}
	if !cfg.Scheme.SharedMode {
		return nil, fmt.Errorf("art: scheme %s does not support shared mode", cfg.Scheme.Name)
	}
	if cfg.ExpandThreshold == 0 {
		cfg.ExpandThreshold = 1024
	}
	if cfg.SampleInverse == 0 {
		cfg.SampleInverse = 10
	}
	t := &Tree{
		scheme:    cfg.Scheme,
		threshold: cfg.ExpandThreshold,
		sampleInv: cfg.SampleInverse,
		expand:    !cfg.DisableExpansion,
	}
	for i := range t.nodeFree {
		t.nodeFree[i] = locks.NewRecycler()
	}
	t.leafFree = locks.NewRecycler()
	t.root = t.newNode(nil, kind256)
	t.root.obsolete.Store(false)
	return t, nil
}

// MustNew is New for static configuration; it panics on error.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return int(t.size.Load()) }

// Expansions returns how many contention expansions have been applied
// (diagnostics for the Figure 13 experiment).
func (t *Tree) Expansions() int { return int(t.expansions.Load()) }

// newNode returns an empty node of kind k, reusing a recycled one when
// available. A recycled node keeps its lock and kind; its generation is
// bumped so the direct paths can tell lives apart, and it stays marked
// obsolete until the caller publishes it into a parent slot.
func (t *Tree) newNode(c *locks.Ctx, k kind) *node {
	if x := t.nodeFree[k].Get(c); x != nil {
		n := x.(*node)
		n.gen.Add(1)
		locks.BumpOnReuse(n.lock)
		n.numChildren = 0
		n.prefixLen = 0
		n.level = 0
		n.contention.Store(0)
		return n
	}
	n := makeNode(k)
	n.lock = t.scheme.NewLock()
	n.obsolete.Store(true)
	return n
}

// freeNode recycles a node that has been unlinked or replaced. The
// caller guarantees the node was marked obsolete under its exclusive
// lock and that the lock has since been released (the release bumped
// the version, so every in-flight optimistic reader fails validation).
// Slots are cleared so the free list never pins live subtrees; the
// kind48 indirection table is cleared so a reused node starts from a
// consistent empty mapping.
func (t *Tree) freeNode(c *locks.Ctx, n *node) {
	n.obsolete.Store(true) // free sites set it under the lock; defensive
	n.numChildren = 0
	for i := range n.keys {
		n.keys[i] = 0
	}
	for i := range n.children {
		n.children[i] = ref{}
	}
	t.nodeFree[n.kind].Put(c, n)
}

// newLeaf returns a leaf holding (k, v), reusing a recycled one when
// available. Stale optimistic readers that race onto a reused leaf read
// the new key/value, but always validate the owner node — which changed
// when the leaf was unlinked — before trusting them.
func (t *Tree) newLeaf(c *locks.Ctx, k, v uint64) *leaf {
	//optiqlvet:ignore recycle leaves carry no lock of their own; a stale reader validates the former owner node, whose release bumped its version when the leaf was unlinked
	if x := t.leafFree.Get(c); x != nil {
		l := x.(*leaf)
		l.key, l.value = k, v
		return l
	}
	return &leaf{key: k, value: v}
}

// freeLeaf recycles a leaf removed from its owner node.
func (t *Tree) freeLeaf(c *locks.Ctx, l *leaf) {
	t.leafFree.Put(c, l)
}

// keyByte returns byte i (0 = most significant) of the big-endian key.
func keyByte(k uint64, i int) byte { return byte(k >> (56 - 8*i)) }

// checkPrefix compares the node's prefix against the key bytes starting
// at level, returning the number of matching bytes.
func checkPrefix(n *node, k uint64, level int) int {
	// prefixLen may be read under an optimistic (unvalidated) hold, so it
	// can be stale or torn; the maxPrefix conjunct keeps the prefix index
	// in bounds and the walked count bounds the result regardless, and
	// version validation rejects any comparison against torn state.
	i := 0
	for ; i < n.prefixLen && i < maxPrefix; i++ {
		if level+i >= 8 || keyByte(k, level+i) != n.prefix[i] {
			return i
		}
	}
	return i
}

// clampedChildren returns numChildren clamped to capacity, defending
// racy traversals.
func (n *node) clampedChildren() int {
	c := n.numChildren
	if c < 0 {
		return 0
	}
	max := len(n.children)
	if n.kind == kind48 {
		max = 48
	}
	if c > max {
		return max
	}
	return c
}

// findChild returns the child slot for branch byte b. Safe under racy
// reads; the result must be validated by the caller.
//
//optiql:noalloc
func (n *node) findChild(b byte) ref {
	switch n.kind {
	case kind4:
		cnt := n.clampedChildren()
		for i := 0; i < cnt; i++ {
			if n.keys[i] == b {
				return n.children[i]
			}
		}
	case kind16:
		// SWAR over the 16 branch bytes — the parallel byte comparison
		// the original ART paper assumes SIMD for on Node16. A torn mask
		// can only select a wrong slot, which version validation rejects.
		m := uint64(simd.Match16(n.keys, b))
		if m &= 1<<uint(n.clampedChildren()) - 1; m != 0 {
			i, _ := simd.NextMatch(m)
			return n.children[i]
		}
	case kind48:
		if idx := n.keys[b]; idx != 0 && int(idx) <= len(n.children) {
			return n.children[idx-1]
		}
	case kind256:
		return n.children[b]
	}
	return ref{}
}

// prefetchNode warms the first cache line of a node's header ahead of
// its lock acquisition. The lock field is an interface to a separate
// allocation, so nothing touches the header itself until checkPrefix
// runs after the acquire; prefetching overlaps that header miss with
// the lock-word access. Purely advisory and racy by design (see
// simd.Prefetch); compiled out under the race detector.
//
//optiql:noalloc
func prefetchNode(n *node) {
	if n != nil {
		simd.Prefetch(unsafe.Pointer(n))
	}
}

// full reports whether the node has no free slot (never true for
// Node256).
func (n *node) full() bool {
	switch n.kind {
	case kind4:
		return n.numChildren >= 4
	case kind16:
		return n.numChildren >= 16
	case kind48:
		return n.numChildren >= 48
	default:
		return false
	}
}

// addChild inserts (b -> r) into a node with a free slot. Caller holds
// the node exclusively. Writes are ordered so racy readers never see a
// slot count covering an unwritten slot.
func (n *node) addChild(b byte, r ref) {
	switch n.kind {
	case kind4, kind16:
		i := n.numChildren
		n.children[i] = r
		n.keys[i] = b
		n.numChildren = i + 1
	case kind48:
		// Find a free child slot (holes are left by removals).
		for i := 0; i < len(n.children); i++ {
			if n.children[i].empty() {
				n.children[i] = r
				n.keys[b] = byte(i + 1)
				n.numChildren++
				return
			}
		}
		panic("art: addChild on full Node48")
	case kind256:
		n.children[b] = r
		n.numChildren++
	}
}

// replaceChild overwrites the slot for b, which must exist. Caller
// holds the node exclusively.
func (n *node) replaceChild(b byte, r ref) {
	switch n.kind {
	case kind4, kind16:
		for i := 0; i < n.numChildren; i++ {
			if n.keys[i] == b {
				n.children[i] = r
				return
			}
		}
		panic("art: replaceChild of absent branch")
	case kind48:
		idx := n.keys[b]
		if idx == 0 {
			panic("art: replaceChild of absent branch")
		}
		n.children[idx-1] = r
	case kind256:
		n.children[b] = r
	}
}

// removeChild deletes the slot for b if present, reporting success.
// Caller holds the node exclusively.
func (n *node) removeChild(b byte) bool {
	switch n.kind {
	case kind4, kind16:
		for i := 0; i < n.numChildren; i++ {
			if n.keys[i] == b {
				last := n.numChildren - 1
				n.keys[i] = n.keys[last]
				n.children[i] = n.children[last]
				n.children[last] = ref{}
				n.numChildren = last
				return true
			}
		}
		return false
	case kind48:
		idx := n.keys[b]
		if idx == 0 {
			return false
		}
		n.keys[b] = 0
		n.children[idx-1] = ref{}
		n.numChildren--
		return true
	case kind256:
		if n.children[b].empty() {
			return false
		}
		n.children[b] = ref{}
		n.numChildren--
		return true
	}
	return false
}

// grow returns a copy of n one kind larger, carrying the same prefix,
// level and children. Caller holds n exclusively and publishes the copy
// through the (also locked) parent before marking n obsolete.
func (t *Tree) grow(c *locks.Ctx, n *node) *node {
	var big *node
	switch n.kind {
	case kind4:
		big = t.newNode(c, kind16)
	case kind16:
		big = t.newNode(c, kind48)
	case kind48:
		big = t.newNode(c, kind256)
	default:
		panic("art: grow of Node256")
	}
	big.level = n.level
	big.prefixLen = n.prefixLen
	big.prefix = n.prefix
	switch n.kind {
	case kind4, kind16:
		for i := 0; i < n.numChildren; i++ {
			big.addChild(n.keys[i], n.children[i])
		}
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := n.keys[b]; idx != 0 {
				big.addChild(byte(b), n.children[idx-1])
			}
		}
	}
	return big
}

// NodeCounts returns the number of inner nodes by kind plus the leaf
// count, walking the tree without synchronization (diagnostics; call
// quiescent).
func (t *Tree) NodeCounts() (n4, n16, n48, n256, leaves int) {
	var walk func(n *node)
	walk = func(n *node) {
		switch n.kind {
		case kind4:
			n4++
		case kind16:
			n16++
		case kind48:
			n48++
		case kind256:
			n256++
		}
		for i := range n.children {
			r := n.children[i]
			if r.l != nil {
				leaves++
			} else if r.n != nil {
				walk(r.n)
			}
		}
	}
	walk(t.root)
	return
}
