package art

import (
	"errors"
	"sync"

	"optiql/internal/kv"
	"optiql/internal/locks"
	"optiql/internal/obs"
)

// KV is a key/value pair returned by Scan. It aliases the repo-wide
// pair type so server scan buffers pass through without conversion.
type KV = kv.KV

// errRestart aborts the current scan attempt after a failed validation;
// the scan resumes from the first uncollected key.
var errRestart = errors.New("art: scan restart")

// pathEnt records a node entered by the current walk together with the
// version snapshot taken on entry, for chain validation.
type pathEnt struct {
	l   locks.Lock
	tok locks.Token
}

// maxDepth bounds a walk: level strictly grows per recursion and stays
// below 8, so a valid path holds at most 9 nodes (root at level 0).
const maxDepth = 9

// slotEnt is one populated child slot snapshotted in branch-byte order.
type slotEnt struct {
	b byte
	r ref
}

// scanScratch is the per-walk scratch space: the validation path and
// one slot-snapshot buffer per level. Pooled so a scan performs no
// per-node (or even per-call) allocation.
type scanScratch struct {
	path  [maxDepth]pathEnt
	slots [maxDepth][256]slotEnt
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// Scan appends up to max pairs with keys >= start in ascending key
// order to out and returns the extended slice; any pairs already in
// out are left alone and do not count against max.
//
// The traversal is a depth-first walk in branch-byte order. Under
// optimistic schemes each pair is committed only after re-validating
// the version of every node on the path from the root — which proves
// the leaf's owner node is still reachable (not replaced by a grow,
// shrink or prefix operation) and that its value could not have been
// written concurrently. A failed validation discards nothing that was
// already committed; the walk restarts after the last committed key.
// Under pessimistic schemes the walk instead holds shared locks
// top-down (at most one per level), in the same order writers acquire.
//
//optiql:noalloc
func (t *Tree) Scan(c *locks.Ctx, start uint64, max int, out []KV) []KV {
	if max <= 0 {
		return out
	}
	sc := scanScratchPool.Get().(*scanScratch)
	defer scanScratchPool.Put(sc)
	base := len(out)
	limit := base + max
	resume := start
	for len(out) < limit {
		err := t.scanWalk(c, t.root, 0, resume, true, limit, &out, sc, 0)
		if err == nil {
			return out
		}
		c.Counters().Inc(obs.EvOpRestart)
		c.TraceRestart(resume)
		if len(out) > base {
			last := out[len(out)-1].Key
			if last == ^uint64(0) {
				return out
			}
			resume = last + 1
		}
	}
	return out
}

// scanWalk visits n's subtree in order. onBoundary reports whether the
// path to n still matches resume's byte prefix (the bound can cut into
// this subtree); once the path exceeds the bound everything below is
// collected unconditionally.
//
// With node recycling, a node's prefix (and everything else) is stable
// only within one life, so every way out of the walk that could have
// skipped keys — the prefix prune and the normal end of the slot loop,
// whose boundary test may have dropped slots — revalidates the node's
// snapshot first. That makes the walk inductively sound: a subtree
// returning nil was read from a node that did not change while it was
// being read, and its parent's own exit validation extends the chain
// upward.
//
//optiql:noalloc
func (t *Tree) scanWalk(c *locks.Ctx, n *node, level int, resume uint64, onBoundary bool, limit int, out *[]KV, sc *scanScratch, depth int) error {
	if depth >= maxDepth {
		return errRestart // deeper than any valid path: torn read upstream
	}
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return errRestart
	}
	pessimistic := !t.scheme.Optimistic
	if pessimistic {
		//optiqlvet:ignore shcheck pessimistic schemes hold a real shared lock whose release cannot fail validation; the result is meaningless here
		defer n.lock.ReleaseSh(c, tok)
	}
	if onBoundary {
		for i := 0; i < n.prefixLen && i < maxPrefix; i++ {
			pb := n.prefix[i]
			rb := keyByte(resume, level+i)
			if pb > rb {
				onBoundary = false
				break
			}
			if pb < rb {
				// Entire subtree below the bound — but only if the
				// prefix bytes just compared belong to an unchanged
				// node.
				if !pessimistic && !n.lock.ReleaseSh(c, tok) {
					return errRestart
				}
				return nil
			}
		}
	}
	pos := level + n.prefixLen
	if pos >= 8 {
		// Possible only via a torn racy read; force revalidation.
		return errRestart
	}
	boundByte := keyByte(resume, pos)

	// Snapshot the populated slots in branch-byte order, then validate
	// the snapshot before dereferencing anything in it.
	slots := sc.slots[depth][:0]
	switch n.kind {
	case kind4, kind16:
		cnt := n.clampedChildren()
		for i := 0; i < cnt; i++ {
			slots = append(slots, slotEnt{n.keys[i], n.children[i]})
		}
		// Insertion sort: at most 16 entries, no closure allocation.
		for i := 1; i < len(slots); i++ {
			for j := i; j > 0 && slots[j-1].b > slots[j].b; j-- {
				slots[j-1], slots[j] = slots[j], slots[j-1]
			}
		}
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := n.keys[b]; idx != 0 && int(idx) <= len(n.children) {
				slots = append(slots, slotEnt{byte(b), n.children[idx-1]})
			}
		}
	case kind256:
		for b := 0; b < 256; b++ {
			if r := n.children[b]; !r.empty() {
				slots = append(slots, slotEnt{byte(b), r})
			}
		}
	}
	if !pessimistic && !n.lock.ReleaseSh(c, tok) {
		return errRestart
	}
	sc.path[depth] = pathEnt{n.lock, tok}
	path := sc.path[:depth+1]

	for i := range slots {
		s := slots[i]
		if len(*out) >= limit {
			return nil
		}
		if onBoundary && s.b < boundByte {
			continue
		}
		childOnBoundary := onBoundary && s.b == boundByte
		if s.r.l != nil {
			l := s.r.l
			key, val := l.key, l.value
			if !pessimistic && !validateChain(c, path) {
				return errRestart
			}
			if key >= resume {
				*out = append(*out, KV{Key: key, Value: val})
			}
			continue
		}
		if s.r.n != nil {
			// Warm the child's header before the recursion acquires its
			// lock (the lock object is a separate allocation).
			prefetchNode(s.r.n)
			if err := t.scanWalk(c, s.r.n, pos+1, resume, childOnBoundary, limit, out, sc, depth+1); err != nil {
				return err
			}
		}
	}
	// Exit validation: the boundary test above may have skipped slots
	// based on this snapshot; prove the snapshot was stable.
	if !pessimistic && !n.lock.ReleaseSh(c, tok) {
		return errRestart
	}
	return nil
}

// validateChain re-checks every version snapshot on the path; all must
// be unchanged for a pair to be committed.
//
//optiql:noalloc
func validateChain(c *locks.Ctx, path []pathEnt) bool {
	for i := range path {
		if !path[i].l.ReleaseSh(c, path[i].tok) {
			return false
		}
	}
	return true
}
