package art

import (
	"errors"
	"sort"

	"optiql/internal/locks"
	"optiql/internal/obs"
)

// KV is a key/value pair returned by Scan.
type KV struct {
	Key   uint64
	Value uint64
}

// errRestart aborts the current scan attempt after a failed validation;
// the scan resumes from the first uncollected key.
var errRestart = errors.New("art: scan restart")

// pathEnt records a node entered by the current walk together with the
// version snapshot taken on entry, for chain validation.
type pathEnt struct {
	l   locks.Lock
	tok locks.Token
}

// Scan collects up to max pairs with keys >= start in ascending key
// order, appending to out and returning the extended slice.
//
// The traversal is a depth-first walk in branch-byte order. Under
// optimistic schemes each pair is committed only after re-validating
// the version of every node on the path from the root — which proves
// the leaf's owner node is still reachable (not replaced by a grow,
// shrink or prefix operation) and that its value could not have been
// written concurrently. A failed validation discards nothing that was
// already committed; the walk restarts after the last committed key.
// Under pessimistic schemes the walk instead holds shared locks
// top-down (at most one per level), in the same order writers acquire.
func (t *Tree) Scan(c *locks.Ctx, start uint64, max int, out []KV) []KV {
	if max <= 0 {
		return out
	}
	resume := start
	for len(out) < max {
		err := t.scanWalk(c, t.root, 0, resume, true, max, &out, nil)
		if err == nil {
			return out
		}
		c.Counters().Inc(obs.EvOpRestart)
		if len(out) > 0 {
			last := out[len(out)-1].Key
			if last == ^uint64(0) {
				return out
			}
			resume = last + 1
		}
	}
	return out
}

// scanWalk visits n's subtree in order. onBoundary reports whether the
// path to n still matches resume's byte prefix (the bound can cut into
// this subtree); once the path exceeds the bound everything below is
// collected unconditionally.
func (t *Tree) scanWalk(c *locks.Ctx, n *node, level int, resume uint64, onBoundary bool, max int, out *[]KV, path []pathEnt) error {
	tok, ok := n.lock.AcquireSh(c)
	if !ok {
		return errRestart
	}
	pessimistic := !t.scheme.Optimistic
	if pessimistic {
		defer n.lock.ReleaseSh(c, tok)
	}
	// The prefix is immutable, so it can be compared without
	// validation.
	if onBoundary {
		for i := 0; i < n.prefixLen; i++ {
			pb := n.prefix[i]
			rb := keyByte(resume, level+i)
			if pb > rb {
				onBoundary = false
				break
			}
			if pb < rb {
				return nil // entire subtree below the bound
			}
		}
	}
	pos := level + n.prefixLen
	if pos >= 8 {
		// Possible only via a torn racy read; force revalidation.
		return errRestart
	}
	boundByte := keyByte(resume, pos)

	// Snapshot the populated slots in branch-byte order, then validate
	// the snapshot before dereferencing anything in it.
	type slot struct {
		b byte
		r ref
	}
	var slots []slot
	switch n.kind {
	case kind4, kind16:
		cnt := n.clampedChildren()
		for i := 0; i < cnt; i++ {
			slots = append(slots, slot{n.keys[i], n.children[i]})
		}
		sort.Slice(slots, func(i, j int) bool { return slots[i].b < slots[j].b })
	case kind48:
		for b := 0; b < 256; b++ {
			if idx := n.keys[b]; idx != 0 && int(idx) <= len(n.children) {
				slots = append(slots, slot{byte(b), n.children[idx-1]})
			}
		}
	case kind256:
		for b := 0; b < 256; b++ {
			if r := n.children[b]; !r.empty() {
				slots = append(slots, slot{byte(b), r})
			}
		}
	}
	if !pessimistic && !n.lock.ReleaseSh(c, tok) {
		return errRestart
	}
	path = append(path, pathEnt{n.lock, tok})

	for _, s := range slots {
		if len(*out) >= max {
			return nil
		}
		if onBoundary && s.b < boundByte {
			continue
		}
		childOnBoundary := onBoundary && s.b == boundByte
		if s.r.l != nil {
			l := s.r.l
			key, val := l.key, l.value
			if !pessimistic && !validateChain(c, path) {
				return errRestart
			}
			if key >= resume {
				*out = append(*out, KV{key, val})
			}
			continue
		}
		if s.r.n != nil {
			if err := t.scanWalk(c, s.r.n, pos+1, resume, childOnBoundary, max, out, path); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateChain re-checks every version snapshot on the path; all must
// be unchanged for a pair to be committed.
func validateChain(c *locks.Ctx, path []pathEnt) bool {
	for i := range path {
		if !path[i].l.ReleaseSh(c, path[i].tok) {
			return false
		}
	}
	return true
}
