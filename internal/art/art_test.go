package art

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"optiql/internal/core"
	"optiql/internal/indextest"
	"optiql/internal/locks"
)

func indexSchemes() []string {
	return []string{"OptLock", "OptiQL", "OptiQL-NOR", "OptiQL-AOR", "pthread", "MCS-RW"}
}

func newTree(t testing.TB, scheme string) (*Tree, *core.Pool) {
	t.Helper()
	tr, err := New(Config{Scheme: locks.MustByName(scheme)})
	if err != nil {
		t.Fatal(err)
	}
	return tr, core.NewPool(256)
}

func ctxFor(t testing.TB, pool *core.Pool) *locks.Ctx {
	t.Helper()
	c := locks.NewCtx(pool, 8)
	t.Cleanup(c.Close)
	return c
}

// sparse maps i to a well-distributed 64-bit key (splitmix64), the
// "sparse integer keys" of Section 7.6.
func sparse(i uint64) uint64 {
	z := i + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil scheme")
	}
	if _, err := New(Config{Scheme: locks.MustByName("MCS")}); err == nil {
		t.Fatal("New accepted a scheme without shared mode")
	}
}

func TestEmptyTree(t *testing.T) {
	tr, pool := newTree(t, "OptiQL")
	c := ctxFor(t, pool)
	if _, ok := tr.Lookup(c, 1); ok {
		t.Fatal("lookup hit in empty tree")
	}
	if tr.Update(c, 1, 2) {
		t.Fatal("update hit in empty tree")
	}
	if tr.Delete(c, 1) {
		t.Fatal("delete hit in empty tree")
	}
}

func TestInsertLookupDense(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			tr, pool := newTree(t, scheme)
			c := ctxFor(t, pool)
			const n = 10000
			for i := uint64(0); i < n; i++ {
				if !tr.Insert(c, i, i*3) {
					t.Fatalf("insert %d reported duplicate", i)
				}
			}
			if tr.Len() != n {
				t.Fatalf("Len = %d, want %d", tr.Len(), n)
			}
			for i := uint64(0); i < n; i++ {
				v, ok := tr.Lookup(c, i)
				if !ok || v != i*3 {
					t.Fatalf("lookup %d = (%d, %v)", i, v, ok)
				}
			}
			if _, ok := tr.Lookup(c, n+5); ok {
				t.Fatal("lookup hit for absent key")
			}
		})
	}
}

func TestInsertLookupSparse(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			tr, pool := newTree(t, scheme)
			c := ctxFor(t, pool)
			const n = 10000
			for i := uint64(0); i < n; i++ {
				tr.Insert(c, sparse(i), i)
			}
			for i := uint64(0); i < n; i++ {
				v, ok := tr.Lookup(c, sparse(i))
				if !ok || v != i {
					t.Fatalf("lookup sparse(%d) = (%d, %v)", i, v, ok)
				}
			}
			// Sparse keys must trigger lazy expansion: far fewer inner
			// nodes than keys.
			n4, n16, n48, n256, leaves := tr.NodeCounts()
			if leaves != n {
				t.Fatalf("leaves = %d, want %d", leaves, n)
			}
			if inner := n4 + n16 + n48 + n256; inner >= n {
				t.Fatalf("no lazy expansion: %d inner nodes for %d keys", inner, n)
			}
		})
	}
}

func TestNodeGrowthThroughAllKinds(t *testing.T) {
	tr, pool := newTree(t, "OptiQL")
	c := ctxFor(t, pool)
	// Keys 0..255 under a common 7-byte prefix force one node to grow
	// 4 -> 16 -> 48 -> 256.
	base := uint64(0xAABBCCDD11223300)
	for i := uint64(0); i < 256; i++ {
		tr.Insert(c, base|i, i)
	}
	for i := uint64(0); i < 256; i++ {
		v, ok := tr.Lookup(c, base|i)
		if !ok || v != i {
			t.Fatalf("lookup %d = (%d, %v)", i, v, ok)
		}
	}
	_, _, _, n256, _ := tr.NodeCounts()
	if n256 < 2 { // the root plus the grown node
		t.Fatalf("expected a grown Node256, counts: %v", n256)
	}
}

func TestPrefixSplit(t *testing.T) {
	tr, pool := newTree(t, "OptiQL")
	c := ctxFor(t, pool)
	// Two keys sharing 6 bytes create a compressed path; a third key
	// diverging inside that prefix forces a prefix split.
	k1 := uint64(0x1111222233440001)
	k2 := uint64(0x1111222233440002)
	k3 := uint64(0x1111990000000000) // diverges at byte 2
	tr.Insert(c, k1, 1)
	tr.Insert(c, k2, 2)
	tr.Insert(c, k3, 3)
	for k, want := range map[uint64]uint64{k1: 1, k2: 2, k3: 3} {
		if v, ok := tr.Lookup(c, k); !ok || v != want {
			t.Fatalf("lookup %x = (%d, %v), want %d", k, v, ok, want)
		}
	}
	// And keys that walk into the compressed path but mismatch miss.
	if _, ok := tr.Lookup(c, 0x1111222233450000); ok {
		t.Fatal("prefix-mismatch key reported present")
	}
}

func TestUpdate(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			tr, pool := newTree(t, scheme)
			c := ctxFor(t, pool)
			for i := uint64(0); i < 4000; i++ {
				tr.Insert(c, sparse(i), i)
			}
			for i := uint64(0); i < 4000; i += 2 {
				if !tr.Update(c, sparse(i), i+7) {
					t.Fatalf("update miss for %d", i)
				}
			}
			if tr.Update(c, 0xDEADBEEF00000000, 1) {
				t.Fatal("update hit for absent key")
			}
			for i := uint64(0); i < 4000; i++ {
				want := i
				if i%2 == 0 {
					want = i + 7
				}
				if v, ok := tr.Lookup(c, sparse(i)); !ok || v != want {
					t.Fatalf("lookup %d = (%d, %v), want %d", i, v, ok, want)
				}
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for _, scheme := range []string{"OptiQL", "OptLock", "pthread"} {
		t.Run(scheme, func(t *testing.T) {
			tr, pool := newTree(t, scheme)
			c := ctxFor(t, pool)
			const n = 4000
			for i := uint64(0); i < n; i++ {
				tr.Insert(c, sparse(i), i)
			}
			for i := uint64(0); i < n; i += 2 {
				if !tr.Delete(c, sparse(i)) {
					t.Fatalf("delete miss for %d", i)
				}
			}
			if tr.Delete(c, sparse(0)) {
				t.Fatal("double delete succeeded")
			}
			for i := uint64(0); i < n; i++ {
				_, ok := tr.Lookup(c, sparse(i))
				if want := i%2 == 1; ok != want {
					t.Fatalf("lookup %d present=%v want %v", i, ok, want)
				}
			}
			if tr.Len() != n/2 {
				t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
			}
		})
	}
}

func TestUpsert(t *testing.T) {
	tr, pool := newTree(t, "OptiQL")
	c := ctxFor(t, pool)
	if !tr.Insert(c, 10, 1) {
		t.Fatal("first insert reported duplicate")
	}
	if tr.Insert(c, 10, 2) {
		t.Fatal("duplicate insert reported new")
	}
	if v, _ := tr.Lookup(c, 10); v != 2 {
		t.Fatalf("value after upsert = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// TestContentionExpansion checks that sampled upgrade failures
// materialize the hot path and that updates keep working across the
// expansion.
func TestContentionExpansion(t *testing.T) {
	tr := MustNew(Config{
		Scheme:          locks.MustByName("OptiQL"),
		ExpandThreshold: 4,
		SampleInverse:   1, // sample every failure
	})
	pool := core.NewPool(64)
	c := ctxFor(t, pool)
	// A single sparse key: lazily expanded leaf hanging off the root.
	k := sparse(42)
	tr.Insert(c, k, 1)

	// Force expansion directly through the internal hook (the
	// concurrent path is probabilistic; the mechanism is determinstic).
	tr.tryExpand(c, tr.root, k)
	if tr.Expansions() != 1 {
		t.Fatalf("expansions = %d, want 1", tr.Expansions())
	}
	if v, ok := tr.Lookup(c, k); !ok || v != 1 {
		t.Fatalf("lookup after expansion = (%d, %v)", v, ok)
	}
	if !tr.Update(c, k, 2) {
		t.Fatal("update miss after expansion")
	}
	if v, _ := tr.Lookup(c, k); v != 2 {
		t.Fatal("update lost after expansion")
	}
	// A second expansion attempt must be a no-op.
	tr.tryExpand(c, tr.root, k)
	if tr.Expansions() != 1 {
		t.Fatalf("expansion repeated: %d", tr.Expansions())
	}
	// Inserting a key that shares the expanded path must still work.
	k2 := k ^ 1 // differs in the last byte
	tr.Insert(c, k2, 9)
	if v, ok := tr.Lookup(c, k2); !ok || v != 9 {
		t.Fatalf("sibling insert after expansion = (%d, %v)", v, ok)
	}
}

// TestNoteContentionTriggersExpansion drives the sampled contention
// counter deterministically: enough recorded upgrade failures on the
// hot slot's owner node must materialize the path exactly once.
func TestNoteContentionTriggersExpansion(t *testing.T) {
	tr := MustNew(Config{
		Scheme:          locks.MustByName("OptiQL"),
		ExpandThreshold: 5,
		SampleInverse:   1,
	})
	pool := core.NewPool(64)
	c := ctxFor(t, pool)
	k := sparse(99)
	tr.Insert(c, k, 1)
	for i := 0; i < 4; i++ {
		tr.noteContention(c, tr.root, k)
		if tr.Expansions() != 0 {
			t.Fatalf("expanded after only %d failures", i+1)
		}
	}
	tr.noteContention(c, tr.root, k)
	if tr.Expansions() != 1 {
		t.Fatalf("expansions = %d after threshold reached", tr.Expansions())
	}
	// The hot key still resolves and updates through the new path.
	if !tr.Update(c, k, 7) {
		t.Fatal("update miss after expansion")
	}
	if v, _ := tr.Lookup(c, k); v != 7 {
		t.Fatal("value lost after expansion")
	}
	// With expansion disabled, the counter may grow but nothing expands.
	tr2 := MustNew(Config{
		Scheme:           locks.MustByName("OptiQL"),
		ExpandThreshold:  1,
		SampleInverse:    1,
		DisableExpansion: true,
	})
	tr2.Insert(c, k, 1)
	for i := 0; i < 10; i++ {
		tr2.noteContention(c, tr2.root, k)
	}
	if tr2.Expansions() != 0 {
		t.Fatal("expansion fired despite DisableExpansion")
	}
}

// TestContentionExpansionUnderLoad drives concurrent updates on a
// single hot sparse key and expects expansion to fire organically.
func TestContentionExpansionUnderLoad(t *testing.T) {
	indextest.SkipIfOptimisticRace(t, locks.MustByName("OptiQL"))
	tr := MustNew(Config{
		Scheme:          locks.MustByName("OptiQL"),
		ExpandThreshold: 2,
		SampleInverse:   1,
	})
	pool := core.NewPool(64)
	k := sparse(7)
	c0 := locks.NewCtx(pool, 8)
	tr.Insert(c0, k, 0)
	c0.Close()

	const goroutines, iters = 8, 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			for i := 0; i < iters; i++ {
				if !tr.Update(c, k, uint64(i)) {
					t.Error("update miss on hot key")
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	c := ctxFor(t, pool)
	if _, ok := tr.Lookup(c, k); !ok {
		t.Fatal("hot key lost")
	}
	t.Logf("expansions under load: %d", tr.Expansions())
}

func TestConcurrentInsertDisjoint(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			indextest.SkipIfOptimisticRace(t, locks.MustByName(scheme))
			tr, pool := newTree(t, scheme)
			const goroutines, per = 8, 3000
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					for i := 0; i < per; i++ {
						k := sparse(uint64(g*per + i))
						if !tr.Insert(c, k, k) {
							t.Errorf("duplicate report for %d", k)
							return
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if tr.Len() != goroutines*per {
				t.Fatalf("Len = %d, want %d", tr.Len(), goroutines*per)
			}
			c := ctxFor(t, pool)
			for i := 0; i < goroutines*per; i++ {
				k := sparse(uint64(i))
				if v, ok := tr.Lookup(c, k); !ok || v != k {
					t.Fatalf("lookup %x = (%d, %v)", k, v, ok)
				}
			}
		})
	}
}

// TestConcurrentMixed mixes all operations over a small hot keyspace.
func TestConcurrentMixed(t *testing.T) {
	for _, scheme := range indexSchemes() {
		t.Run(scheme, func(t *testing.T) {
			indextest.SkipIfOptimisticRace(t, locks.MustByName(scheme))
			tr, pool := newTree(t, scheme)
			const goroutines, iters, keyspace = 8, 4000, 512
			c0 := locks.NewCtx(pool, 8)
			for i := uint64(0); i < keyspace; i += 2 {
				tr.Insert(c0, sparse(i), sparse(i))
			}
			c0.Close()
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := locks.NewCtx(pool, 8)
					defer c.Close()
					rng := rand.New(rand.NewSource(int64(g)))
					for i := 0; i < iters; i++ {
						k := sparse(uint64(rng.Intn(keyspace)))
						switch rng.Intn(4) {
						case 0:
							tr.Insert(c, k, k)
						case 1:
							tr.Update(c, k, k)
						case 2:
							tr.Delete(c, k)
						case 3:
							if v, ok := tr.Lookup(c, k); ok && v != k {
								t.Errorf("lookup %x returned foreign value %x", k, v)
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			// Survivors must be self-consistent.
			c := ctxFor(t, pool)
			for i := uint64(0); i < keyspace; i++ {
				k := sparse(i)
				if v, ok := tr.Lookup(c, k); ok && v != k {
					t.Fatalf("final lookup %x = %x", k, v)
				}
			}
		})
	}
}

// Property test: tree agrees with a reference map under random ops.
func TestQuickAgainstMap(t *testing.T) {
	tr, pool := newTree(t, "OptiQL")
	c := ctxFor(t, pool)
	ref := make(map[uint64]uint64)
	f := func(ops []uint32) bool {
		for _, op := range ops {
			k := sparse(uint64(op % 300))
			switch (op / 300) % 3 {
			case 0:
				tr.Insert(c, k, uint64(op))
				ref[k] = uint64(op)
			case 1:
				tr.Delete(c, k)
				delete(ref, k)
			case 2:
				v, ok := tr.Lookup(c, k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		return tr.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkARTLookup(b *testing.B) {
	tr, pool := newTree(b, "OptiQL")
	c := locks.NewCtx(pool, 8)
	defer c.Close()
	for i := uint64(0); i < 100000; i++ {
		tr.Insert(c, sparse(i), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(c, sparse(uint64(i)%100000))
	}
}
