package art

import (
	"sort"
	"sync"
	"testing"

	"optiql/internal/indextest"
	"optiql/internal/locks"
	"optiql/internal/workload"
)

func TestScanEmptyAndBounds(t *testing.T) {
	tr, pool := newTree(t, "OptiQL")
	c := ctxFor(t, pool)
	if got := tr.Scan(c, 0, 10, nil); len(got) != 0 {
		t.Fatalf("scan of empty tree returned %d", len(got))
	}
	tr.Insert(c, 100, 1)
	if got := tr.Scan(c, 0, 0, nil); len(got) != 0 {
		t.Fatal("max=0 returned data")
	}
	if got := tr.Scan(c, 101, 10, nil); len(got) != 0 {
		t.Fatalf("scan past the last key returned %d", len(got))
	}
	if got := tr.Scan(c, ^uint64(0), 10, nil); len(got) != 0 {
		t.Fatalf("scan from max key returned %d", len(got))
	}
	tr.Insert(c, ^uint64(0), 9)
	got := tr.Scan(c, ^uint64(0), 10, nil)
	if len(got) != 1 || got[0].Key != ^uint64(0) {
		t.Fatalf("scan at max key = %+v", got)
	}
}

func TestScanOrderedDenseAndSparse(t *testing.T) {
	for _, scheme := range []string{"OptiQL", "OptLock", "pthread", "MCS-RW"} {
		t.Run(scheme, func(t *testing.T) {
			tr, pool := newTree(t, scheme)
			c := ctxFor(t, pool)
			const n = 3000
			keys := make([]uint64, 0, 2*n)
			for i := uint64(0); i < n; i++ {
				tr.Insert(c, i*3, i) // dense-ish with gaps
				keys = append(keys, i*3)
				sk := sparse(i)
				tr.Insert(c, sk, sk)
				keys = append(keys, sk)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

			// Full scan matches the sorted key list.
			got := tr.Scan(c, 0, 3*n, nil)
			if len(got) != len(keys) {
				t.Fatalf("full scan returned %d pairs, want %d", len(got), len(keys))
			}
			for i, kv := range got {
				if kv.Key != keys[i] {
					t.Fatalf("scan[%d].Key = %#x, want %#x", i, kv.Key, keys[i])
				}
			}
			// Bounded scan from the middle.
			mid := keys[len(keys)/2]
			got = tr.Scan(c, mid, 100, nil)
			if len(got) != 100 || got[0].Key != mid {
				t.Fatalf("mid scan start = %#x (len %d), want %#x", got[0].Key, len(got), mid)
			}
			// Scan starting inside a gap.
			got = tr.Scan(c, 1, 3, nil)
			if len(got) != 3 || got[0].Key < 1 {
				t.Fatalf("gap scan = %+v", got)
			}
		})
	}
}

func TestScanSeesConsistentValues(t *testing.T) {
	indextest.SkipIfOptimisticRace(t, locks.MustByName("OptiQL"))
	tr, pool := newTree(t, "OptiQL")
	const n = 2000
	c0 := locks.NewCtx(pool, 8)
	for i := uint64(0); i < n; i++ {
		tr.Insert(c0, sparse(i), sparse(i))
	}
	c0.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers keep values = key (two alternating writes that preserve
	// the invariant only at commit points would be torn if scans were
	// unvalidated; here value==key always, and updates rewrite the same
	// value, so any torn read surfaces as a foreign value).
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			rng := workload.NewRNG(uint64(g) + 5)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := sparse(rng.Uint64n(n))
				tr.Update(c, k, k)
				if rng.Uint64n(8) == 0 {
					tr.Delete(c, k)
					tr.Insert(c, k, k)
				}
			}
		}()
	}
	sc := locks.NewCtx(pool, 8)
	for i := 0; i < 60; i++ {
		out := tr.Scan(sc, 0, n, nil)
		for j, kv := range out {
			if kv.Value != kv.Key {
				t.Fatalf("scan saw torn pair %+v", kv)
			}
			if j > 0 && kv.Key <= out[j-1].Key {
				t.Fatalf("scan out of order at %d", j)
			}
		}
	}
	sc.Close()
	close(stop)
	wg.Wait()
}

func TestScanDuringStructuralChurn(t *testing.T) {
	indextest.SkipIfOptimisticRace(t, locks.MustByName("OptiQL"))
	tr, pool := newTree(t, "OptiQL")
	const n = 4000
	c0 := locks.NewCtx(pool, 8)
	// Clustered keys force grows/shrinks on shared nodes.
	for i := uint64(0); i < n; i++ {
		tr.Insert(c0, i, i)
	}
	c0.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := locks.NewCtx(pool, 8)
		defer c.Close()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := uint64(0); i < n; i += 2 {
				tr.Delete(c, i)
			}
			for i := uint64(0); i < n; i += 2 {
				tr.Insert(c, i, i)
			}
		}
	}()
	sc := locks.NewCtx(pool, 8)
	for i := 0; i < 30; i++ {
		out := tr.Scan(sc, 0, n, nil)
		for j, kv := range out {
			if kv.Value != kv.Key {
				t.Fatalf("torn pair %+v", kv)
			}
			// Odd keys are never touched: they must always be present.
			if j > 0 && kv.Key <= out[j-1].Key {
				t.Fatalf("out of order at %d", j)
			}
		}
		odd := 0
		for _, kv := range out {
			if kv.Key%2 == 1 {
				odd++
			}
		}
		if odd != n/2 {
			t.Fatalf("scan missed stable odd keys: %d/%d", odd, n/2)
		}
	}
	sc.Close()
	close(stop)
	wg.Wait()
}
