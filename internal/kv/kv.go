// Package kv defines the key/value pair type shared by the index
// substrates, the oracle harness and the wire protocol. Having one
// concrete type (the packages alias it: btree.KV = art.KV = wire.KV =
// kv.KV) lets the server pass one pooled output buffer straight into
// an index scan and encode the result without converting — the scan
// path copies each pair exactly once, from the leaf into the buffer.
package kv

// KV is one key/value pair. Keys and values are uint64, matching the
// paper's 8-byte keys and 8-byte payload TIDs.
type KV struct {
	Key   uint64
	Value uint64
}
