package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/faults"
	"optiql/internal/hist"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
	"optiql/internal/server/wire"
	"optiql/internal/workload"
)

// NetConfig parameterizes one networked benchmark run against an
// optiqld server: the same workload mixes, key distributions and
// timeline sampling as the in-process index benchmark, driven through
// pipelined protocol connections instead of direct calls.
type NetConfig struct {
	// Addr is the server address ("host:port").
	Addr string
	// Conns is the number of concurrent client connections, each driven
	// by one goroutine (the networked analogue of Threads).
	Conns int
	// Pipeline is the per-connection pipelining window: how many
	// requests may be in flight before the worker reads a response
	// (default 32; 1 means strictly synchronous).
	Pipeline int
	// Records is the preloaded key population (default 100k). The
	// client preloads via batched PUTs before the measured phase.
	Records int
	// SkipPreload skips the preload phase (for servers already
	// populated by an earlier run).
	SkipPreload bool
	// Distribution is "uniform", "selfsimilar" or "zipf"; Skew is its
	// parameter.
	Distribution string
	Skew         float64
	// KeySpace selects dense or sparse keys.
	KeySpace workload.KeySpace
	// Mix is the operation mix. OpUpdate and OpInsert both map to PUT
	// (updates target resident keys, inserts draw fresh per-connection
	// sequences, mirroring the in-process driver).
	Mix workload.Mix
	// Duration is the measured run length.
	Duration time.Duration
	// ScanLen is the number of pairs requested per SCAN (default 16).
	ScanLen int
	// Latency enables sampled per-operation latency collection
	// (response-time of the sampled request, including queueing).
	Latency bool
	// SampleEvery is the throughput-timeline sampling interval
	// (DefaultSampleEvery when zero; negative disables the timeline).
	SampleEvery time.Duration
	// Live, when set, is pointed at this run's completed-operation
	// total so the -obs endpoint can serve client-side throughput.
	Live *obs.LiveSource `json:"-"`
	// Chaos, when it enables any fault, wraps every measured-phase
	// connection with client-side fault injection (the preload stays on
	// a clean transport). Chaos implies resilient mode: a pipelined
	// client cannot outlive injected resets, so workers switch to
	// self-healing synchronous clients.
	Chaos *faults.Config
	// Reconn forces resilient mode even without chaos: workers drive
	// wire.ReconnClient synchronously (Pipeline is ignored), retrying
	// and reconnecting per its policy instead of failing the run on the
	// first transport error.
	Reconn bool
	// MaxRetries is the per-request retry budget in resilient mode
	// (ReconnClient's default when zero).
	MaxRetries int
	// Trace, when set in resilient mode, attributes client-side stalls:
	// ReconnClient backoffs/re-dials and injector faults become trace
	// spans so chaos-run tail latency decomposes by cause.
	Trace *trace.Tracer `json:"-"`
}

// resilient reports whether workers use self-healing synchronous
// clients instead of raw pipelined connections.
func (c *NetConfig) resilient() bool { return c.Reconn || c.Chaos.Any() }

func (c *NetConfig) normalize() error {
	if c.Addr == "" {
		return fmt.Errorf("bench: NetConfig.Addr is required")
	}
	if c.Conns <= 0 {
		c.Conns = 1
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 32
	}
	if c.Records <= 0 {
		c.Records = 100_000
	}
	if c.Distribution == "" {
		c.Distribution = "uniform"
	}
	if c.Skew == 0 {
		c.Skew = 0.2
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.ScanLen == 0 {
		c.ScanLen = 16
	}
	if c.ScanLen > wire.MaxScan {
		c.ScanLen = wire.MaxScan
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	return c.Mix.Validate()
}

func (c *NetConfig) distribution() (workload.Distribution, error) {
	n := uint64(c.Records)
	switch c.Distribution {
	case "uniform":
		return workload.NewUniform(n), nil
	case "selfsimilar":
		return workload.NewSelfSimilar(n, c.Skew), nil
	case "zipf":
		return workload.NewZipfian(n, c.Skew), nil
	}
	return nil, fmt.Errorf("bench: unknown distribution %q", c.Distribution)
}

// NetResult aggregates one networked benchmark run. PerOp/PerOpMiss
// are indexed by workload.OpKind like IndexResult's; a miss is a
// NOT_FOUND (lookup/delete/empty scan), a PUT that inserted where an
// update was intended, or a PUT that overwrote where an insert was
// intended.
type NetResult struct {
	Config    NetConfig
	Elapsed   time.Duration
	Ops       uint64
	PerOp     [5]uint64
	PerOpMiss [5]uint64
	// Errors counts requests answered with StatusErr, plus — in
	// resilient mode — requests that failed even after the retry
	// budget (surfaced per-op instead of aborting the run).
	Errors uint64
	// Overloaded counts requests whose final answer was
	// StatusOverloaded: the server shed them and the retry budget ran
	// out backing off.
	Overloaded uint64
	// Reconn aggregates the workers' ReconnClient stats (resilient
	// mode only).
	Reconn wire.ReconnStats
	// Counters is the client-side event snapshot (fault_*, cli_*) in
	// resilient mode, nil otherwise.
	Counters map[string]uint64
	// Hist is the sampled response-time distribution (nil unless
	// Config.Latency).
	Hist *hist.Histogram
	// Timeline is the per-interval completed-response series.
	Timeline *Timeline
}

// Mops returns client-observed throughput in million ops per second.
func (r NetResult) Mops() float64 {
	if s := r.Elapsed.Seconds(); s > 0 {
		return float64(r.Ops) / s / 1e6
	}
	return 0
}

// Report converts a networked run into a machine-readable run report.
func (r NetResult) Report(tool string) *obs.Report {
	rep := &obs.Report{
		Tool:           tool,
		Timestamp:      time.Now(),
		Host:           obs.CurrentHost(),
		Config:         r.Config,
		ElapsedSeconds: r.Elapsed.Seconds(),
		Ops:            r.Ops,
		Mops:           r.Mops(),
		Counters:       r.Counters,
		Timeline:       r.Timeline.Report(),
		Latency:        obs.LatencyReportFrom(r.Hist),
		Extra: map[string]any{
			"per_op":      r.PerOp,
			"per_op_miss": r.PerOpMiss,
			"net_errors":  r.Errors,
		},
	}
	if r.Config.resilient() {
		rep.Extra["overloaded"] = r.Overloaded
		rep.Extra["reconn"] = r.Reconn
	}
	rep.AttachContention(obs.ContentionFrom(r.Config.Trace, nil))
	return rep
}

// preloadBatch is how many PUTs one preload BATCH request carries.
const preloadBatch = 512

// Preload inserts cfg.Records keys (value = key) through batched PUTs
// split across cfg.Conns connections. It is exported so servers
// started fresh can be populated without a measured run.
func Preload(cfg NetConfig) error {
	if err := cfg.normalize(); err != nil {
		return err
	}
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Conns)
	per := (cfg.Records + cfg.Conns - 1) / cfg.Conns
	for w := 0; w < cfg.Conns; w++ {
		lo := w * per
		hi := lo + per
		if hi > cfg.Records {
			hi = cfg.Records
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			cl, err := wire.Dial(cfg.Addr)
			if err != nil {
				errs <- err
				return
			}
			defer func() { cl.Close() }()
			for at := lo; at < hi; at += preloadBatch {
				end := at + preloadBatch
				if end > hi {
					end = hi
				}
				sub := make([]wire.Request, 0, end-at)
				for i := at; i < end; i++ {
					k := cfg.KeySpace.Key(uint64(i))
					sub = append(sub, wire.Put(k, k))
				}
				// Preload PUTs are idempotent (value = key), so the whole
				// batch can simply be retried until every sub-op landed:
				// always after admission-control sheds, and — in resilient
				// mode — across transport failures on a fresh connection.
				backoff := time.Millisecond
				for attempt := 0; ; attempt++ {
					resp, err := cl.Do(wire.Batch(sub...))
					done := err == nil
					if err == nil {
						for i := range resp.Sub {
							if resp.Sub[i].Status == wire.StatusOverloaded {
								done = false
								break
							}
						}
					}
					if done {
						break
					}
					if err != nil {
						if !cfg.resilient() || attempt >= 20 {
							errs <- err
							return
						}
						cl.Close()
						time.Sleep(backoff)
						if cl, err = wire.Dial(cfg.Addr); err != nil {
							errs <- err
							return
						}
					} else {
						if attempt >= 50 {
							errs <- fmt.Errorf("bench: preload still shed after %d attempts", attempt)
							return
						}
						time.Sleep(backoff)
					}
					if backoff < 100*time.Millisecond {
						backoff *= 2
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// netMiss reports whether a non-error response counts as a miss for
// the workload op kind that produced it: a NOT_FOUND, a PUT that
// inserted where an update was intended (or vice versa), or an empty
// scan.
func netMiss(kind workload.OpKind, resp *wire.Response) bool {
	if resp.Status == wire.StatusNotFound {
		return true
	}
	switch kind {
	case workload.OpUpdate:
		return resp.Inserted
	case workload.OpInsert:
		return !resp.Inserted
	case workload.OpScan:
		return len(resp.Pairs) == 0
	}
	return false
}

// RunNet preloads the server (unless cfg.SkipPreload) and measures
// one networked configuration: cfg.Conns workers each drive one
// pipelined connection with the configured mix for cfg.Duration, then
// drain their windows. Counts are client-observed completions.
//
// In resilient mode (cfg.Reconn, or any cfg.Chaos fault enabled) each
// worker instead drives a synchronous self-healing ReconnClient —
// with chaos, through fault-injected dials — and a request that fails
// even after the retry budget is counted in Errors rather than
// aborting the run.
func RunNet(cfg NetConfig) (NetResult, error) {
	if err := cfg.normalize(); err != nil {
		return NetResult{}, err
	}
	if !cfg.SkipPreload {
		if err := Preload(cfg); err != nil {
			return NetResult{}, err
		}
	}
	dist, err := cfg.distribution()
	if err != nil {
		return NetResult{}, err
	}

	// Resilient-mode plumbing: one injector shared by every worker's
	// dials, one registry collecting fault_* and cli_* events for the
	// report.
	var (
		reg *obs.Registry
		inj *faults.Injector
	)
	if cfg.resilient() {
		reg = obs.NewRegistry()
		if cfg.Chaos.Any() {
			chaos := *cfg.Chaos
			if chaos.Counters == nil {
				chaos.Counters = reg.NewCounters()
			}
			if chaos.Trace == nil {
				// One shared buffer: injector spans are recorded
				// unconditionally (Record is mutex-safe; Sample is not
				// called on a shared Buf).
				chaos.Trace = cfg.Trace.NewBuf(-1, -1)
			}
			inj = faults.NewInjector(chaos)
		}
	}

	type workerRes struct {
		ops        uint64
		perOp      [5]uint64
		perOpMiss  [5]uint64
		errors     uint64
		overloaded uint64
		rstats     wire.ReconnStats
		h          hist.Histogram
		err        error
	}
	results := make([]workerRes, cfg.Conns)
	smp := newSampler(cfg.Conns, cfg.SampleEvery)
	if cfg.Live != nil {
		cfg.Live.Set(nil, smp.total)
	}

	var (
		stop    atomic.Bool
		started sync.WaitGroup
		done    sync.WaitGroup
	)
	begin := make(chan struct{})
	for w := 0; w < cfg.Conns; w++ {
		w := w
		started.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			res := &results[w]
			rng := workload.NewRNG(uint64(w)*0x9E3779B97F4A7C15 + 1)
			insertSeq := uint64(cfg.Records) + uint64(w)<<40
			cell := smp.cell(w)

			// draw builds the next request per the configured mix.
			draw := func() (workload.OpKind, wire.Request) {
				op := cfg.Mix.Draw(rng)
				k := cfg.KeySpace.Key(dist.Next(rng))
				var req wire.Request
				switch op {
				case workload.OpLookup:
					req = wire.Get(k)
				case workload.OpUpdate:
					req = wire.Put(k, rng.Uint64())
				case workload.OpInsert:
					insertSeq++
					ik := cfg.KeySpace.Key(insertSeq)
					req = wire.Put(ik, insertSeq)
				case workload.OpDelete:
					req = wire.Del(k)
				case workload.OpScan:
					req = wire.Scan(k, uint32(cfg.ScanLen))
				}
				return op, req
			}

			if cfg.resilient() {
				rc := &wire.ReconnClient{
					Addr:       cfg.Addr,
					MaxRetries: cfg.MaxRetries,
					Counters:   reg.NewCounters(),
					Trace:      cfg.Trace.NewBuf(-1, w),
				}
				if inj != nil {
					rc.DialFunc = inj.Dial
				}
				defer rc.Close()
				defer func() { res.rstats = rc.Stats() }()
				started.Done()
				<-begin
				for !stop.Load() {
					kind, req := draw()
					var t0 time.Time
					if cfg.Latency && rng.Uint64n(16) == 0 {
						t0 = time.Now()
					}
					resp, err := rc.Do(req)
					if err != nil {
						// Retry budget exhausted (or an indeterminate
						// write): the failure is the data point.
						res.errors++
						continue
					}
					switch resp.Status {
					case wire.StatusErr:
						res.errors++
					case wire.StatusOverloaded:
						res.overloaded++
					default:
						if netMiss(kind, &resp) {
							res.perOpMiss[kind]++
						}
					}
					res.perOp[kind]++
					if !t0.IsZero() {
						res.h.Record(uint64(time.Since(t0)))
					}
					res.ops++
					cell.n.Add(1)
				}
				return
			}

			cl, err := wire.Dial(cfg.Addr)
			if err != nil {
				res.err = err
				started.Done()
				return
			}
			defer cl.Close()

			// inflight remembers each outstanding request's workload op
			// kind and send time, FIFO alongside the client's pending
			// queue.
			type sent struct {
				kind workload.OpKind
				t0   time.Time
			}
			inflight := make([]sent, 0, cfg.Pipeline)

			recvOne := func() bool {
				resp, err := cl.Recv()
				if err != nil {
					res.err = err
					return false
				}
				s := inflight[0]
				inflight = inflight[1:]
				miss := false
				switch resp.Status {
				case wire.StatusErr:
					res.errors++
				case wire.StatusOverloaded:
					res.overloaded++
				default:
					miss = netMiss(s.kind, &resp)
				}
				res.perOp[s.kind]++
				if miss {
					res.perOpMiss[s.kind]++
				}
				if !s.t0.IsZero() {
					res.h.Record(uint64(time.Since(s.t0)))
				}
				res.ops++
				cell.n.Add(1)
				return true
			}

			started.Done()
			<-begin
			for !stop.Load() && res.err == nil {
				// Fill the window, then complete at least one response.
				for len(inflight) < cfg.Pipeline && !stop.Load() {
					op, req := draw()
					var t0 time.Time
					if cfg.Latency && rng.Uint64n(16) == 0 {
						t0 = time.Now()
					}
					if err := cl.Send(req); err != nil {
						res.err = err
						break
					}
					inflight = append(inflight, sent{op, t0})
				}
				if res.err != nil {
					break
				}
				if len(inflight) == 0 {
					continue
				}
				if !recvOne() {
					break
				}
			}
			// Drain the window so every sent request is accounted for.
			if res.err == nil {
				cl.Flush()
				for len(inflight) > 0 {
					if !recvOne() {
						break
					}
				}
			}
		}()
	}
	started.Wait()
	start := time.Now()
	close(begin)
	smp.start()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(start)
	timeline := smp.finish()

	out := NetResult{Config: cfg, Elapsed: elapsed, Timeline: timeline}
	if cfg.Latency {
		out.Hist = new(hist.Histogram)
	}
	for i := range results {
		if results[i].err != nil && err == nil {
			err = results[i].err
		}
		out.Ops += results[i].ops
		out.Errors += results[i].errors
		out.Overloaded += results[i].overloaded
		out.Reconn.Dials += results[i].rstats.Dials
		out.Reconn.Reconnects += results[i].rstats.Reconnects
		out.Reconn.Retries += results[i].rstats.Retries
		out.Reconn.Overloaded += results[i].rstats.Overloaded
		out.Reconn.Failures += results[i].rstats.Failures
		for k := 0; k < 5; k++ {
			out.PerOp[k] += results[i].perOp[k]
			out.PerOpMiss[k] += results[i].perOpMiss[k]
		}
		if out.Hist != nil {
			out.Hist.Merge(&results[i].h)
		}
	}
	if reg != nil {
		out.Counters = reg.Snapshot().Map()
	}
	return out, err
}
