// Package bench implements the paper's two benchmark harnesses: the
// lock microbenchmark framework of Section 7.1-7.2 (pluggable lock
// implementations, contention controlled by the number of locks,
// tunable critical-section length, mixed read/write ratios) and a
// PiBench-style index benchmark driver for the B+-tree and ART
// experiments of Sections 7.3-7.6 (preloaded records, operation mixes,
// key distributions, thread sweeps, tail-latency collection).
package bench

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/core"
	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/workload"
)

// Contention levels of Figure 6, expressed as the number of locks the
// threads pick from uniformly at random.
const (
	ExtremeContention = 1
	HighContention    = 5
	MediumContention  = 30000
	LowContention     = 1000000
	// NoContention is the per-thread-lock mode (0 locks shared).
	NoContention = 0
)

// ContentionLevels maps Figure 6's panel names to lock counts.
func ContentionLevels() []struct {
	Name  string
	Locks int
} {
	return []struct {
		Name  string
		Locks int
	}{
		{"extreme", ExtremeContention},
		{"high", HighContention},
		{"medium", MediumContention},
		{"low", LowContention},
		{"none", NoContention},
	}
}

// MicroConfig parameterizes one microbenchmark run.
type MicroConfig struct {
	// Scheme is the lock variant name (see locks.AllNames).
	Scheme string
	// Threads is the number of concurrent workers.
	Threads int
	// Locks is the number of locks contended on (uniform random pick);
	// 0 means one private lock per thread ("no contention").
	Locks int
	// ReadPct is the percentage of operations that are reads (0-100).
	// Schemes without shared mode require 0.
	ReadPct int
	// CSLen is the critical-section length: the number of times the
	// thread increments a volatile stack variable (paper default: 50).
	CSLen int
	// Duration is the measured run length.
	Duration time.Duration
	// Split dedicates ReadPct percent of the threads to pure reads and
	// the rest to pure writes, instead of mixing operations within each
	// thread. On machines with fewer cores than threads this keeps the
	// writer queue standing, which is the regime Table 1 measures; see
	// EXPERIMENTS.md.
	Split bool
	// DisableObs turns event counting off for the run (the control arm
	// of the overhead A/B benchmark).
	DisableObs bool
}

func (c *MicroConfig) normalize() error {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.CSLen == 0 {
		c.CSLen = 50
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.ReadPct < 0 || c.ReadPct > 100 {
		return fmt.Errorf("bench: ReadPct %d out of range", c.ReadPct)
	}
	s, err := locks.ByName(c.Scheme)
	if err != nil {
		return err
	}
	if c.ReadPct > 0 && !s.SharedMode {
		return fmt.Errorf("bench: scheme %s cannot run reads", c.Scheme)
	}
	return nil
}

// MicroResult aggregates a microbenchmark run. A "read operation"
// retries until its validation succeeds, as in the paper; the success
// rate (Table 1) is successful validations over attempts.
type MicroResult struct {
	Config       MicroConfig
	Elapsed      time.Duration
	Ops          uint64 // completed operations (reads + writes)
	Writes       uint64
	Reads        uint64 // completed (validated) reads
	ReadAttempts uint64
	// PerThreadOps records each worker's completed operations,
	// supporting the fairness analysis of Section 1.1 ("lucky" threads
	// under backoff acquire the lock ~3x more often than others).
	PerThreadOps []uint64
	// Obs is the merged event-counter snapshot (nil when counting was
	// disabled).
	Obs *obs.Snapshot
}

// Mops returns throughput in million operations per second (0 for an
// empty or unmeasured run rather than NaN/Inf).
func (r MicroResult) Mops() float64 {
	if s := r.Elapsed.Seconds(); s > 0 {
		return float64(r.Ops) / s / 1e6
	}
	return 0
}

// ReadSuccessRate returns validated reads over read attempts (1.0 when
// no read ever failed; 0 when no reads ran).
func (r MicroResult) ReadSuccessRate() float64 {
	if r.ReadAttempts == 0 {
		return 0
	}
	return float64(r.Reads) / float64(r.ReadAttempts)
}

// csWork simulates the critical section: n increments of a stack
// variable that the compiler must not elide (the paper's "increment a
// volatile variable on the stack").
//
//go:noinline
func csWork(n int) int {
	v := 0
	for i := 0; i < n; i++ {
		v++
	}
	return v
}

// csSink defeats dead-code elimination of csWork results.
var csSink atomic.Int64

// RunMicro executes one microbenchmark run.
func RunMicro(cfg MicroConfig) (MicroResult, error) {
	if err := cfg.normalize(); err != nil {
		return MicroResult{}, err
	}
	scheme := locks.MustByName(cfg.Scheme)

	nLocks := cfg.Locks
	perThread := nLocks == 0
	if perThread {
		nLocks = cfg.Threads
	}
	lockSet := make([]locks.Lock, nLocks)
	for i := range lockSet {
		lockSet[i] = scheme.NewLock()
	}
	pool := core.NewPool(min(core.MaxQNodes, cfg.Threads*4))

	var reg *obs.Registry
	if !cfg.DisableObs {
		reg = obs.NewRegistry()
	}

	var (
		stop    atomic.Bool
		started sync.WaitGroup
		done    sync.WaitGroup
		results = make([]MicroResult, cfg.Threads)
	)
	begin := make(chan struct{})
	for w := 0; w < cfg.Threads; w++ {
		w := w
		started.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			c := locks.NewCtx(pool, 4)
			defer c.Close()
			c.SetCounters(reg.NewCounters())
			rng := workload.NewRNG(uint64(w) + 1)
			// In split mode the first readerThreads workers only read.
			readerThread := cfg.Split && w < cfg.Threads*cfg.ReadPct/100
			started.Done()
			<-begin
			var res MicroResult
			sink := 0
			for !stop.Load() {
				var l locks.Lock
				if perThread {
					l = lockSet[w]
				} else {
					l = lockSet[rng.Uint64n(uint64(nLocks))]
				}
				isRead := int(rng.Uint64n(100)) < cfg.ReadPct
				if cfg.Split {
					isRead = readerThread
				}
				if isRead {
					// Read: retry until a validated read completes,
					// busy-polling like the paper's C++ readers (the Go
					// runtime's asynchronous preemption keeps writers
					// progressing even with more threads than cores).
					spins := 0
					for {
						res.ReadAttempts++
						tok, ok := l.AcquireSh(c)
						if ok {
							sink += csWork(cfg.CSLen)
							if l.ReleaseSh(c, tok) {
								break
							}
						}
						spins++
						if spins&1023 == 0 && stop.Load() {
							res.ReadAttempts-- // drop the aborted attempt
							break
						}
					}
					res.Reads++
					res.Ops++
				} else {
					tok := l.AcquireEx(c)
					sink += csWork(cfg.CSLen)
					l.CloseWindow(tok)
					l.ReleaseEx(c, tok)
					res.Writes++
					res.Ops++
				}
			}
			csSink.Add(int64(sink))
			results[w] = res
		}()
	}
	started.Wait()
	start := time.Now()
	close(begin)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(start)

	total := MicroResult{Config: cfg, Elapsed: elapsed}
	for _, r := range results {
		total.Ops += r.Ops
		total.Writes += r.Writes
		total.Reads += r.Reads
		total.ReadAttempts += r.ReadAttempts
		total.PerThreadOps = append(total.PerThreadOps, r.Ops)
	}
	if reg != nil {
		s := reg.Snapshot()
		total.Obs = &s
	}
	return total, nil
}

// FairnessRatio returns the ratio between the busiest and least busy
// worker's completed operations — 1.0 is perfectly fair; the paper
// observed ~3x under exponential backoff. Returns 0 if any worker
// completed nothing.
func (r MicroResult) FairnessRatio() float64 {
	if len(r.PerThreadOps) == 0 {
		return 0
	}
	lo, hi := r.PerThreadOps[0], r.PerThreadOps[0]
	for _, n := range r.PerThreadOps[1:] {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo == 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

// Repeat runs fn `runs` times and returns the mean and half-width of a
// 95% confidence interval over its float results (normal
// approximation), matching the paper's "average of N runs with error
// margins" reporting.
func Repeat(runs int, fn func() (float64, error)) (mean, ci float64, err error) {
	if runs <= 0 {
		runs = 1
	}
	xs := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		x, err := fn()
		if err != nil {
			return 0, 0, err
		}
		xs = append(xs, x)
	}
	return Stats(xs)
}

// Stats returns the mean and 95% CI half-width of xs.
func Stats(xs []float64) (mean, ci float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("bench: no samples")
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) == 1 {
		return mean, 0, nil
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	stddev := math.Sqrt(ss / float64(len(xs)-1))
	return mean, 1.96 * stddev / math.Sqrt(float64(len(xs))), nil
}
