package bench

import (
	"math"
	"sync/atomic"
	"time"

	"optiql/internal/obs"
)

// DefaultSampleEvery is the timeline sampling interval used when a
// config leaves SampleEvery zero: 100ms ticks, fine enough to expose
// the second-scale throughput collapses of the paper's Figure 9.
const DefaultSampleEvery = 100 * time.Millisecond

// opsCell is one worker's completed-operation counter, padded so
// adjacent workers never share a cache line. Workers add with plain
// uncontended atomics; the sampler and the live endpoint read
// concurrently.
type opsCell struct {
	n atomic.Uint64
	_ [56]byte
}

// Timeline is the per-interval throughput series of one run.
type Timeline struct {
	// Interval is the sampling tick.
	Interval time.Duration
	// Ops is the number of operations completed in each elapsed
	// interval, in order.
	Ops []uint64
}

// Stats returns the min, mean and standard deviation of the
// per-interval throughput in Mops. A run that collapses under a
// standing writer queue shows up as a low min and high stddev even
// when the run-wide average looks healthy.
func (tl *Timeline) Stats() (min, avg, stddev float64) {
	if tl == nil || len(tl.Ops) == 0 || tl.Interval <= 0 {
		return 0, 0, 0
	}
	scale := 1 / tl.Interval.Seconds() / 1e6
	min = math.Inf(1)
	for _, n := range tl.Ops {
		m := float64(n) * scale
		if m < min {
			min = m
		}
		avg += m
	}
	avg /= float64(len(tl.Ops))
	var ss float64
	for _, n := range tl.Ops {
		d := float64(n)*scale - avg
		ss += d * d
	}
	stddev = math.Sqrt(ss / float64(len(tl.Ops)))
	return min, avg, stddev
}

// Report converts the timeline for a JSON run report (nil if empty).
func (tl *Timeline) Report() *obs.TimelineReport {
	if tl == nil || len(tl.Ops) == 0 {
		return nil
	}
	min, avg, stddev := tl.Stats()
	return &obs.TimelineReport{
		IntervalSeconds: tl.Interval.Seconds(),
		OpsPerInterval:  append([]uint64(nil), tl.Ops...),
		MopsMin:         min,
		MopsAvg:         avg,
		MopsStddev:      stddev,
	}
}

// sampler owns the per-worker ops cells and, once started, appends one
// interval delta per tick until stopped.
type sampler struct {
	cells    []opsCell
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	tl       *Timeline
}

// newSampler allocates cells for `workers` workers. interval <= 0
// disables ticking (cells still count, for live readers).
func newSampler(workers int, interval time.Duration) *sampler {
	return &sampler{
		cells:    make([]opsCell, workers),
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// cell returns worker w's counter.
func (s *sampler) cell(w int) *opsCell { return &s.cells[w] }

// total sums all cells (a consistent monotonic sample).
func (s *sampler) total() uint64 {
	var t uint64
	for i := range s.cells {
		t += s.cells[i].n.Load()
	}
	return t
}

// start launches the tick goroutine; no-op when ticking is disabled.
func (s *sampler) start() {
	if s.interval <= 0 {
		close(s.done)
		return
	}
	s.tl = &Timeline{Interval: s.interval}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		var last uint64
		for {
			select {
			case <-tick.C:
				now := s.total()
				s.tl.Ops = append(s.tl.Ops, now-last)
				last = now
			case <-s.stop:
				return
			}
		}
	}()
}

// finish stops ticking and returns the collected timeline (nil when
// ticking was disabled).
func (s *sampler) finish() *Timeline {
	close(s.stop)
	<-s.done
	return s.tl
}
