package bench

import (
	"time"

	"optiql/internal/hist"
	"optiql/internal/obs"
)

// latencyReport converts a merged histogram for a JSON run report.
func latencyReport(h *hist.Histogram) *obs.LatencyReport {
	if h == nil || h.Count() == 0 {
		return nil
	}
	pcts := make(map[string]uint64, len(hist.StandardPercentiles))
	snap := h.Snapshot()
	for i, label := range hist.PercentileLabels {
		pcts[label] = snap[i]
	}
	var buckets []obs.BucketReport
	for _, b := range h.Buckets() {
		buckets = append(buckets, obs.BucketReport{UpperNs: b.Upper, Count: b.Count})
	}
	return &obs.LatencyReport{
		Count:       h.Count(),
		MinNs:       h.Min(),
		MaxNs:       h.Max(),
		MeanNs:      h.Mean(),
		Percentiles: pcts,
		Buckets:     buckets,
	}
}

// Report converts an index run into the machine-readable run report
// emitted by the cmd front-ends' -json flag.
func (r IndexResult) Report(tool string) *obs.Report {
	rep := &obs.Report{
		Tool:           tool,
		Timestamp:      time.Now(),
		Host:           obs.CurrentHost(),
		Config:         r.Config,
		ElapsedSeconds: r.Elapsed.Seconds(),
		Ops:            r.Ops,
		Mops:           r.Mops(),
		Timeline:       r.Timeline.Report(),
		Latency:        latencyReport(r.Hist),
		Extra: map[string]any{
			"per_op":      r.PerOp,
			"per_op_miss": r.PerOpMiss,
			"expansions":  r.Expansions,
		},
	}
	if r.Obs != nil {
		rep.Counters = r.Obs.Map()
	}
	return rep
}

// Report converts a microbenchmark run into a machine-readable run
// report.
func (r MicroResult) Report(tool string) *obs.Report {
	rep := &obs.Report{
		Tool:           tool,
		Timestamp:      time.Now(),
		Host:           obs.CurrentHost(),
		Config:         r.Config,
		ElapsedSeconds: r.Elapsed.Seconds(),
		Ops:            r.Ops,
		Mops:           r.Mops(),
		Extra: map[string]any{
			"writes":            r.Writes,
			"reads":             r.Reads,
			"read_attempts":     r.ReadAttempts,
			"read_success_rate": r.ReadSuccessRate(),
			"fairness_ratio":    r.FairnessRatio(),
			"per_thread_ops":    r.PerThreadOps,
		},
	}
	if r.Obs != nil {
		rep.Counters = r.Obs.Map()
	}
	return rep
}
