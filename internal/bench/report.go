package bench

import (
	"time"

	"optiql/internal/obs"
)

// Report converts an index run into the machine-readable run report
// emitted by the cmd front-ends' -json flag.
func (r IndexResult) Report(tool string) *obs.Report {
	rep := &obs.Report{
		Tool:           tool,
		Timestamp:      time.Now(),
		Host:           obs.CurrentHost(),
		Config:         r.Config,
		ElapsedSeconds: r.Elapsed.Seconds(),
		Ops:            r.Ops,
		Mops:           r.Mops(),
		Timeline:       r.Timeline.Report(),
		Latency:        obs.LatencyReportFrom(r.Hist),
		Extra: map[string]any{
			"per_op":      r.PerOp,
			"per_op_miss": r.PerOpMiss,
			"expansions":  r.Expansions,
		},
	}
	if r.Obs != nil {
		rep.Counters = r.Obs.Map()
	}
	rep.AttachContention(obs.ContentionFrom(r.Config.Trace, nil))
	return rep
}

// Report converts a microbenchmark run into a machine-readable run
// report.
func (r MicroResult) Report(tool string) *obs.Report {
	rep := &obs.Report{
		Tool:           tool,
		Timestamp:      time.Now(),
		Host:           obs.CurrentHost(),
		Config:         r.Config,
		ElapsedSeconds: r.Elapsed.Seconds(),
		Ops:            r.Ops,
		Mops:           r.Mops(),
		Extra: map[string]any{
			"writes":            r.Writes,
			"reads":             r.Reads,
			"read_attempts":     r.ReadAttempts,
			"read_success_rate": r.ReadSuccessRate(),
			"fairness_ratio":    r.FairnessRatio(),
			"per_thread_ops":    r.PerThreadOps,
		},
	}
	if r.Obs != nil {
		rep.Counters = r.Obs.Map()
	}
	return rep
}
