package bench

import (
	"testing"
	"time"

	"optiql/internal/workload"
)

func TestMicroConfigValidation(t *testing.T) {
	if _, err := RunMicro(MicroConfig{Scheme: "nope"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := RunMicro(MicroConfig{Scheme: "TTS", ReadPct: 50}); err == nil {
		t.Fatal("reads on TTS accepted")
	}
	if _, err := RunMicro(MicroConfig{Scheme: "OptiQL", ReadPct: 150}); err == nil {
		t.Fatal("ReadPct 150 accepted")
	}
}

func TestMicroPureWriteAllSchemes(t *testing.T) {
	for _, scheme := range []string{"OptLock", "OptiQL", "OptiQL-NOR", "pthread", "MCS-RW", "TTS", "MCS"} {
		t.Run(scheme, func(t *testing.T) {
			res, err := RunMicro(MicroConfig{
				Scheme:   scheme,
				Threads:  4,
				Locks:    HighContention,
				Duration: 50 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 || res.Writes != res.Ops || res.Reads != 0 {
				t.Fatalf("unexpected counts: %+v", res)
			}
			if res.Mops() <= 0 {
				t.Fatal("non-positive throughput")
			}
		})
	}
}

func TestMicroMixedCountsConsistent(t *testing.T) {
	res, err := RunMicro(MicroConfig{
		Scheme:   "OptiQL",
		Threads:  4,
		Locks:    HighContention,
		ReadPct:  50,
		Duration: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads+res.Writes != res.Ops {
		t.Fatalf("reads %d + writes %d != ops %d", res.Reads, res.Writes, res.Ops)
	}
	if res.ReadAttempts < res.Reads {
		t.Fatalf("attempts %d < reads %d", res.ReadAttempts, res.Reads)
	}
	if rate := res.ReadSuccessRate(); rate <= 0 || rate > 1 {
		t.Fatalf("success rate %f out of range", rate)
	}
}

// TestMicroNORStarvesReaders reproduces Table 1's qualitative claim at
// miniature scale: with a standing writer queue (split mode keeps pure
// writers re-enqueueing), OptiQL's opportunistic read completes more
// reads per attempt than OptiQL-NOR, which only admits readers while
// the queue is completely empty. Scheduling noise on few-core machines
// compresses the gap, so the run is repeated and compared on averages.
func TestMicroNORStarvesReaders(t *testing.T) {
	run := func(scheme string) (rate, reads float64) {
		var rs, ds float64
		const runs = 3
		for i := 0; i < runs; i++ {
			res, err := RunMicro(MicroConfig{
				Scheme:   scheme,
				Threads:  8,
				Locks:    ExtremeContention,
				ReadPct:  50,
				Split:    true,
				Duration: 150 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			rs += res.ReadSuccessRate()
			ds += float64(res.Reads)
		}
		return rs / runs, ds / runs
	}
	norRate, norReads := run("OptiQL-NOR")
	orRate, orReads := run("OptiQL")
	t.Logf("read success: OptiQL-NOR %.4f (%.0f reads), OptiQL %.4f (%.0f reads)",
		norRate, norReads, orRate, orReads)
	// On a single-CPU box both variants' readers live off moments when
	// every writer happens to be descheduled, so the paper's large gap
	// (Table 1: 1.67% vs 32%) needs real parallelism to reproduce; the
	// unit test therefore only checks the harness accounting, and the
	// full experiment (cmd/microbench -experiment table1) reports the
	// measured numbers. With >= 2 cores, expect orRate >> norRate.
	for _, r := range []float64{norRate, orRate} {
		if r < 0 || r > 1 {
			t.Fatalf("success rate %f out of range", r)
		}
	}
	if norReads == 0 || orReads == 0 {
		t.Fatal("split mode completed no reads at all")
	}
}

func TestRepeatAndStats(t *testing.T) {
	i := 0
	mean, ci, err := Repeat(4, func() (float64, error) {
		i++
		return float64(i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 2.5 {
		t.Fatalf("mean = %f", mean)
	}
	if ci <= 0 {
		t.Fatal("ci not positive for varying samples")
	}
	if _, _, err := Stats(nil); err == nil {
		t.Fatal("Stats accepted empty input")
	}
	m, c, err := Stats([]float64{3})
	if err != nil || m != 3 || c != 0 {
		t.Fatalf("single-sample stats = %f %f %v", m, c, err)
	}
}

func TestIndexConfigValidation(t *testing.T) {
	bad := []IndexConfig{
		{Index: "hash", Scheme: "OptiQL", Mix: workload.ReadOnly},
		{Index: "btree", Scheme: "nope", Mix: workload.ReadOnly},
		{Index: "btree", Scheme: "OptiQL", Mix: workload.Mix{LookupPct: 10}},
	}
	for i, cfg := range bad {
		if _, err := RunIndex(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestIndexBenchSmoke(t *testing.T) {
	for _, index := range []string{"btree", "art"} {
		for _, dist := range []string{"uniform", "selfsimilar"} {
			res, err := RunIndex(IndexConfig{
				Index:        index,
				Scheme:       "OptiQL",
				Threads:      4,
				Records:      20000,
				Distribution: dist,
				KeySpace:     workload.Dense,
				Mix:          workload.Balanced,
				Duration:     50 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatalf("%s/%s: no operations completed", index, dist)
			}
			var sum uint64
			for _, c := range res.PerOp {
				sum += c
			}
			if sum != res.Ops {
				t.Fatalf("per-op counts %v do not sum to ops %d", res.PerOp, res.Ops)
			}
		}
	}
}

func TestIndexBenchLatency(t *testing.T) {
	res, err := RunIndex(IndexConfig{
		Index:        "btree",
		Scheme:       "OptLock",
		Threads:      2,
		Records:      10000,
		Distribution: "selfsimilar",
		KeySpace:     workload.Dense,
		Mix:          workload.UpdateOnly,
		Duration:     80 * time.Millisecond,
		Latency:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hist == nil || res.Hist.Count() == 0 {
		t.Fatal("no latency samples collected")
	}
	snap := res.Hist.Snapshot()
	if snap[len(snap)-1] < snap[1] {
		t.Fatalf("p99.999 < p50: %v", snap)
	}
}

func TestIndexBenchInsertWorkload(t *testing.T) {
	res, err := RunIndex(IndexConfig{
		Index:        "btree",
		Scheme:       "OptiQL",
		Threads:      4,
		Records:      5000,
		Distribution: "uniform",
		KeySpace:     workload.Sparse,
		Mix:          workload.Mix{LookupPct: 50, InsertPct: 30, DeletePct: 10, UpdatePct: 10},
		Duration:     60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerOp[workload.OpInsert] == 0 {
		t.Fatal("no inserts ran")
	}
}

func TestIndexScanWorkload(t *testing.T) {
	for _, index := range []string{"btree", "art"} {
		res, err := RunIndex(IndexConfig{
			Index:        index,
			Scheme:       "OptiQL",
			Threads:      2,
			Records:      5000,
			Distribution: "uniform",
			KeySpace:     workload.Dense,
			Mix:          workload.Mix{LookupPct: 50, ScanPct: 50},
			Duration:     50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.PerOp[workload.OpScan] == 0 {
			t.Fatalf("%s: no scans ran", index)
		}
	}
}

func TestContentionLevels(t *testing.T) {
	levels := ContentionLevels()
	if len(levels) != 5 || levels[0].Locks != 1 || levels[4].Locks != 0 {
		t.Fatalf("unexpected contention levels: %+v", levels)
	}
}
