package bench

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"optiql/internal/obs"
	"optiql/internal/workload"
)

func TestTimelineStatsExact(t *testing.T) {
	tl := &Timeline{Interval: 100 * time.Millisecond, Ops: []uint64{100_000, 300_000}}
	// 100ms intervals: 1 and 3 Mops -> min 1, avg 2, stddev 1.
	min, avg, stddev := tl.Stats()
	if math.Abs(min-1) > 1e-9 || math.Abs(avg-2) > 1e-9 || math.Abs(stddev-1) > 1e-9 {
		t.Fatalf("Stats() = %f %f %f, want 1 2 1", min, avg, stddev)
	}
	rep := tl.Report()
	if rep == nil || rep.IntervalSeconds != 0.1 || len(rep.OpsPerInterval) != 2 {
		t.Fatalf("Report() = %+v", rep)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var tl *Timeline
	if min, avg, stddev := tl.Stats(); min != 0 || avg != 0 || stddev != 0 {
		t.Fatal("nil timeline must have zero stats")
	}
	if tl.Report() != nil {
		t.Fatal("nil timeline must have nil report")
	}
	empty := &Timeline{Interval: time.Second}
	if empty.Report() != nil {
		t.Fatal("empty timeline must have nil report")
	}
}

func TestMopsZeroElapsedGuard(t *testing.T) {
	if m := (IndexResult{Ops: 100}).Mops(); m != 0 {
		t.Fatalf("IndexResult zero-elapsed Mops = %f", m)
	}
	if m := (MicroResult{Ops: 100}).Mops(); m != 0 {
		t.Fatalf("MicroResult zero-elapsed Mops = %f", m)
	}
}

// TestIndexObsAndTimeline checks that a normal run carries a counter
// snapshot, a timeline whose interval sum cannot exceed the total, and
// distinct miss counts; and that DisableObs / negative SampleEvery
// suppress them.
func TestIndexObsAndTimeline(t *testing.T) {
	cfg := IndexConfig{
		Index:        "btree",
		Scheme:       "OptiQL",
		Threads:      2,
		Records:      2000,
		Distribution: "uniform",
		KeySpace:     workload.Dense,
		// Delete-heavy: repeated deletes of the same keys must miss, so
		// the miss split is exercised deterministically.
		Mix:         workload.Mix{LookupPct: 50, DeletePct: 50},
		Duration:    250 * time.Millisecond,
		SampleEvery: 50 * time.Millisecond,
	}
	res, err := RunIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("run without DisableObs must carry a counter snapshot")
	}
	if res.Obs.Get(obs.EvExFree)+res.Obs.Get(obs.EvExHandover) == 0 {
		t.Fatal("deletes ran but no exclusive acquisitions were counted")
	}
	if res.PerOpMiss[workload.OpDelete] == 0 {
		t.Fatal("repeated deletes must record misses")
	}
	for op, miss := range res.PerOpMiss {
		if miss > res.PerOp[op] {
			t.Fatalf("op %d: misses %d exceed ops %d", op, miss, res.PerOp[op])
		}
	}
	if res.Timeline == nil || len(res.Timeline.Ops) == 0 {
		t.Fatal("timeline sampling was on but no intervals collected")
	}
	var sum uint64
	for _, n := range res.Timeline.Ops {
		sum += n
	}
	if sum > res.Ops {
		t.Fatalf("timeline sum %d exceeds total ops %d", sum, res.Ops)
	}

	cfg.DisableObs = true
	cfg.SampleEvery = -1
	res, err = RunIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Fatal("DisableObs run must not carry a snapshot")
	}
	if res.Timeline != nil {
		t.Fatal("negative SampleEvery must disable the timeline")
	}
}

func TestMicroObsCounters(t *testing.T) {
	res, err := RunMicro(MicroConfig{
		Scheme:   "OptiQL",
		Threads:  2,
		Locks:    1,
		ReadPct:  50,
		Duration: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs == nil {
		t.Fatal("micro run must carry a counter snapshot")
	}
	if got, want := res.Obs.Get(obs.EvExFree)+res.Obs.Get(obs.EvExHandover), res.Writes; got != want {
		t.Fatalf("exclusive acquisitions %d != writes %d", got, want)
	}

	res, err = RunMicro(MicroConfig{
		Scheme:     "OptiQL",
		Threads:    1,
		Duration:   20 * time.Millisecond,
		DisableObs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs != nil {
		t.Fatal("DisableObs micro run must not carry a snapshot")
	}
}

// TestIndexLiveSource wires a LiveSource into a run and scrapes
// /metrics while (and after) it executes.
func TestIndexLiveSource(t *testing.T) {
	src := &obs.LiveSource{}
	srv := httptest.NewServer(obs.NewMux(src))
	defer srv.Close()

	_, err := RunIndex(IndexConfig{
		Index:        "btree",
		Scheme:       "OptiQL",
		Threads:      2,
		Records:      2000,
		Distribution: "uniform",
		KeySpace:     workload.Dense,
		Mix:          workload.UpdateOnly,
		Duration:     100 * time.Millisecond,
		Live:         src,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	s := string(body)
	if !strings.Contains(s, "optiql_ops_total") || strings.Contains(s, "optiql_ops_total 0\n") {
		t.Fatalf("/metrics did not serve live ops:\n%s", s)
	}
	if !strings.Contains(s, `optiql_lock_events_total{event="ex_acquire_free"}`) {
		t.Fatalf("/metrics missing lock counters:\n%s", s)
	}
}

// TestReportJSON checks the -json path end to end at the library
// level: an IndexResult renders to valid JSON with config, counters,
// timeline and latency sections.
func TestReportJSON(t *testing.T) {
	res, err := RunIndex(IndexConfig{
		Index:        "art",
		Scheme:       "OptiQL",
		Threads:      2,
		Records:      2000,
		Distribution: "selfsimilar",
		KeySpace:     workload.Dense,
		Mix:          workload.Balanced,
		Duration:     150 * time.Millisecond,
		SampleEvery:  50 * time.Millisecond,
		Latency:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.Report("indexbench").Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"tool", "host", "config", "ops", "mops", "counters", "timeline", "latency", "extra"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("report missing %q:\n%s", key, buf.String())
		}
	}
	counters := back["counters"].(map[string]any)
	if len(counters) != int(obs.NumEvents) {
		t.Fatalf("counters has %d entries, want %d", len(counters), obs.NumEvents)
	}

	micro, err := RunMicro(MicroConfig{Scheme: "OptLock", Threads: 2, Locks: 1, ReadPct: 80, Duration: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := micro.Report("microbench").Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("micro report is not valid JSON: %v", err)
	}
}
