package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/art"
	"optiql/internal/btree"
	"optiql/internal/core"
	"optiql/internal/hist"
	"optiql/internal/kv"
	"optiql/internal/locks"
	"optiql/internal/obs"
	"optiql/internal/obs/trace"
	"optiql/internal/workload"
)

// Index abstracts the two substrates for the benchmark driver.
type Index interface {
	Lookup(c *locks.Ctx, k uint64) (uint64, bool)
	Insert(c *locks.Ctx, k, v uint64) bool
	Update(c *locks.Ctx, k, v uint64) bool
	Delete(c *locks.Ctx, k uint64) bool
	// Scan reads up to n pairs starting at k into buf (reused across
	// calls so the measured loop does not allocate), returning how many
	// it saw; indexes without range support return -1.
	Scan(c *locks.Ctx, k uint64, n int, buf []kv.KV) int
}

type btreeIndex struct{ t *btree.Tree }

func (b btreeIndex) Lookup(c *locks.Ctx, k uint64) (uint64, bool) { return b.t.Lookup(c, k) }
func (b btreeIndex) Insert(c *locks.Ctx, k, v uint64) bool        { return b.t.Insert(c, k, v) }
func (b btreeIndex) Update(c *locks.Ctx, k, v uint64) bool        { return b.t.Update(c, k, v) }
func (b btreeIndex) Delete(c *locks.Ctx, k uint64) bool           { return b.t.Delete(c, k) }
func (b btreeIndex) Scan(c *locks.Ctx, k uint64, n int, buf []kv.KV) int {
	return len(b.t.Scan(c, k, n, buf[:0]))
}

type artIndex struct{ t *art.Tree }

func (a artIndex) Lookup(c *locks.Ctx, k uint64) (uint64, bool) { return a.t.Lookup(c, k) }
func (a artIndex) Insert(c *locks.Ctx, k, v uint64) bool        { return a.t.Insert(c, k, v) }
func (a artIndex) Update(c *locks.Ctx, k, v uint64) bool        { return a.t.Update(c, k, v) }
func (a artIndex) Delete(c *locks.Ctx, k uint64) bool           { return a.t.Delete(c, k) }
func (a artIndex) Scan(c *locks.Ctx, k uint64, n int, buf []kv.KV) int {
	return len(a.t.Scan(c, k, n, buf[:0]))
}

// IndexConfig parameterizes one index benchmark run.
type IndexConfig struct {
	// Index is "btree" or "art".
	Index string
	// Scheme is the lock variant name.
	Scheme string
	// Threads is the number of worker goroutines.
	Threads int
	// Records preloaded before the measured phase (paper: 100M; default
	// here 1M — see DESIGN.md).
	Records int
	// NodeSize is the B+-tree node size in bytes (default 256).
	NodeSize int
	// Distribution is "uniform", "selfsimilar" or "zipf".
	Distribution string
	// Skew is the self-similar skew factor (default 0.2) or the zipf
	// theta.
	Skew float64
	// KeySpace selects dense or sparse keys.
	KeySpace workload.KeySpace
	// Mix is the operation mix.
	Mix workload.Mix
	// Duration is the measured run length.
	Duration time.Duration
	// Latency enables sampled per-operation latency collection.
	Latency bool
	// ScanLen is the number of pairs per scan operation (default 16).
	ScanLen int
	// ARTExpandThreshold / ARTSampleInverse / ARTDisableExpansion tune
	// contention expansion (Section 6.2) for ablations.
	ARTExpandThreshold  uint32
	ARTSampleInverse    uint32
	ARTDisableExpansion bool
	// SampleEvery is the throughput-timeline sampling interval
	// (DefaultSampleEvery when zero; negative disables the timeline).
	SampleEvery time.Duration
	// DisableObs turns event counting off for the run — the control arm
	// of the overhead A/B benchmark; leave it false in normal use.
	DisableObs bool
	// Live, when set, is pointed at this run's counters and operation
	// total so an HTTP endpoint can serve them while the run is hot.
	Live *obs.LiveSource `json:"-"`
	// Trace, when set, samples lock-wait and tree-op spans into the
	// contention profiler (internal/obs/trace); the report then carries
	// lock-wait percentiles and hot-key rankings, and Live serves them
	// at /debug/contention.
	Trace *trace.Tracer `json:"-"`
}

func (c *IndexConfig) normalize() error {
	if c.Index != "btree" && c.Index != "art" {
		return fmt.Errorf("bench: unknown index %q", c.Index)
	}
	if _, err := locks.ByName(c.Scheme); err != nil {
		return err
	}
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Records <= 0 {
		c.Records = 1_000_000
	}
	if c.NodeSize == 0 {
		c.NodeSize = btree.DefaultNodeSize
	}
	if c.Distribution == "" {
		c.Distribution = "uniform"
	}
	if c.Skew == 0 {
		c.Skew = 0.2
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.ScanLen == 0 {
		c.ScanLen = 16
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = DefaultSampleEvery
	}
	return c.Mix.Validate()
}

func (c *IndexConfig) distribution() (workload.Distribution, error) {
	n := uint64(c.Records)
	switch c.Distribution {
	case "uniform":
		return workload.NewUniform(n), nil
	case "selfsimilar":
		return workload.NewSelfSimilar(n, c.Skew), nil
	case "zipf":
		return workload.NewZipfian(n, c.Skew), nil
	}
	return nil, fmt.Errorf("bench: unknown distribution %q", c.Distribution)
}

// IndexResult aggregates one index benchmark run.
type IndexResult struct {
	Config  IndexConfig
	Elapsed time.Duration
	Ops     uint64
	// PerOp counts completed operations by kind (hits and misses).
	PerOp [5]uint64
	// PerOpMiss counts, per kind, the operations that did not find
	// their key (failed lookups/updates/deletes, inserts that fell back
	// to overwriting an existing key, scans returning nothing), so hit
	// rates are visible instead of conflated into PerOp.
	PerOpMiss [5]uint64
	// Hist is the sampled operation latency distribution (nil unless
	// Config.Latency).
	Hist *hist.Histogram
	// Expansions reports ART contention expansions during the run.
	Expansions int
	// Obs is the merged event-counter snapshot (nil when counting was
	// disabled).
	Obs *obs.Snapshot
	// Timeline is the per-interval throughput series (nil when sampling
	// was disabled).
	Timeline *Timeline
}

// Mops returns throughput in million operations per second (0 for an
// empty or unmeasured run rather than NaN/Inf).
func (r IndexResult) Mops() float64 {
	if s := r.Elapsed.Seconds(); s > 0 {
		return float64(r.Ops) / s / 1e6
	}
	return 0
}

// BuildIndex creates and preloads the index for cfg, returning it with
// the queue-node pool sized for the run. Exposed so callers can reuse
// one preloaded index across measured runs (as the repeated-runs
// methodology does).
func BuildIndex(cfg *IndexConfig) (Index, *core.Pool, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	scheme := locks.MustByName(cfg.Scheme)
	var idx Index
	switch cfg.Index {
	case "btree":
		t, err := btree.New(btree.Config{Scheme: scheme, NodeSize: cfg.NodeSize})
		if err != nil {
			return nil, nil, err
		}
		idx = btreeIndex{t}
	case "art":
		t, err := art.New(art.Config{
			Scheme:           scheme,
			ExpandThreshold:  cfg.ARTExpandThreshold,
			SampleInverse:    cfg.ARTSampleInverse,
			DisableExpansion: cfg.ARTDisableExpansion,
		})
		if err != nil {
			return nil, nil, err
		}
		idx = artIndex{t}
	}
	pool := core.NewPool(core.MaxQNodes)

	// Parallel preload over disjoint ranges.
	loaders := cfg.Threads
	if loaders > 16 {
		loaders = 16
	}
	var wg sync.WaitGroup
	per := (cfg.Records + loaders - 1) / loaders
	for l := 0; l < loaders; l++ {
		lo := l * per
		hi := lo + per
		if hi > cfg.Records {
			hi = cfg.Records
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			for i := lo; i < hi; i++ {
				k := cfg.KeySpace.Key(uint64(i))
				idx.Insert(c, k, k)
			}
		}(lo, hi)
	}
	wg.Wait()
	return idx, pool, nil
}

// RunIndex builds, preloads and measures one configuration.
func RunIndex(cfg IndexConfig) (IndexResult, error) {
	idx, pool, err := BuildIndex(&cfg)
	if err != nil {
		return IndexResult{}, err
	}
	return MeasureIndex(cfg, idx, pool)
}

// MeasureIndex runs the measured phase against a preloaded index.
func MeasureIndex(cfg IndexConfig, idx Index, pool *core.Pool) (IndexResult, error) {
	if err := cfg.normalize(); err != nil {
		return IndexResult{}, err
	}
	dist, err := cfg.distribution()
	if err != nil {
		return IndexResult{}, err
	}

	type workerRes struct {
		ops       uint64
		perOp     [5]uint64
		perOpMiss [5]uint64
		h         hist.Histogram
	}
	results := make([]workerRes, cfg.Threads)

	// A nil registry hands out nil (disabled) counter sets, so the
	// workers need no enabled/disabled branches.
	var reg *obs.Registry
	if !cfg.DisableObs {
		reg = obs.NewRegistry()
	}
	smp := newSampler(cfg.Threads, cfg.SampleEvery)
	if cfg.Live != nil {
		cfg.Live.Set(reg.Snapshot, smp.total)
		if cfg.Trace != nil {
			tr := cfg.Trace
			cfg.Live.SetContention(func() *obs.ContentionReport {
				return obs.ContentionFrom(tr, nil)
			})
		}
	}

	var (
		stop    atomic.Bool
		started sync.WaitGroup
		done    sync.WaitGroup
	)
	// Inserted keys beyond the preload range are drawn from per-thread
	// disjoint sequences, PiBench style.
	begin := make(chan struct{})
	for w := 0; w < cfg.Threads; w++ {
		w := w
		started.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			c := locks.NewCtx(pool, 8)
			defer c.Close()
			c.SetCounters(reg.NewCounters())
			tb := cfg.Trace.NewBuf(0, w)
			c.SetTrace(tb)
			rng := workload.NewRNG(uint64(w)*0x9E3779B97F4A7C15 + 1)
			insertSeq := uint64(cfg.Records) + uint64(w)<<40
			scanBuf := make([]kv.KV, 0, cfg.ScanLen)
			res := &results[w]
			cell := smp.cell(w)
			started.Done()
			<-begin
			for !stop.Load() {
				op := cfg.Mix.Draw(rng)
				k := cfg.KeySpace.Key(dist.Next(rng))
				sample := cfg.Latency && rng.Uint64n(16) == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				// Trace sampling is independent of the latency sampler:
				// it uses the buffer's own 1-in-N counter so the hot
				// path pays only an increment-and-mask when tracing is
				// on and nothing when tb is nil.
				ts := tb.Sample()
				var tt0 int64
				if ts {
					tt0 = tb.Now()
					tb.NoteKey(0, k)
				}
				hit := true
				switch op {
				case workload.OpLookup:
					_, hit = idx.Lookup(c, k)
				case workload.OpUpdate:
					hit = idx.Update(c, k, rng.Uint64())
				case workload.OpInsert:
					insertSeq++
					hit = idx.Insert(c, cfg.KeySpace.Key(insertSeq), insertSeq)
				case workload.OpDelete:
					hit = idx.Delete(c, k)
				case workload.OpScan:
					hit = idx.Scan(c, k, cfg.ScanLen, scanBuf) > 0
				}
				if ts {
					tb.Record(trace.KindTreeOp, uint8(op), tt0, tb.Now()-tt0, 0, k)
				}
				if sample {
					res.h.Record(uint64(time.Since(t0)))
				}
				res.perOp[op]++
				if !hit {
					res.perOpMiss[op]++
				}
				res.ops++
				cell.n.Add(1)
			}
		}()
	}
	started.Wait()
	start := time.Now()
	close(begin)
	smp.start()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()
	elapsed := time.Since(start)
	timeline := smp.finish()

	out := IndexResult{Config: cfg, Elapsed: elapsed, Timeline: timeline}
	if cfg.Latency {
		out.Hist = new(hist.Histogram)
	}
	for i := range results {
		out.Ops += results[i].ops
		for k := 0; k < 5; k++ {
			out.PerOp[k] += results[i].perOp[k]
			out.PerOpMiss[k] += results[i].perOpMiss[k]
		}
		if out.Hist != nil {
			out.Hist.Merge(&results[i].h)
		}
	}
	if a, ok := idx.(artIndex); ok {
		out.Expansions = a.t.Expansions()
	}
	if reg != nil {
		s := reg.Snapshot()
		out.Obs = &s
	}
	return out, nil
}
