package hist

import "testing"

// TestMergeEmptyCases covers the Merge edge cases: empty into empty,
// empty into populated (no-op, min untouched), and populated into
// empty (full adoption including min/max).
func TestMergeEmptyCases(t *testing.T) {
	var a, b Histogram
	a.Merge(&b)
	if a.Count() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatalf("empty+empty = count %d min %d max %d", a.Count(), a.Min(), a.Max())
	}

	a.Record(100)
	a.Record(200)
	a.Merge(&b) // empty other must not disturb min (b.min is 0)
	if a.Count() != 2 || a.Min() != 100 || a.Max() != 200 {
		t.Fatalf("populated+empty = count %d min %d max %d", a.Count(), a.Min(), a.Max())
	}

	var c Histogram
	c.Merge(&a) // empty receiver must adopt other's min, not keep 0
	if c.Count() != 2 || c.Min() != 100 || c.Max() != 200 {
		t.Fatalf("empty+populated = count %d min %d max %d", c.Count(), c.Min(), c.Max())
	}
}

// TestPercentileBoundaries pins the quantile behaviour at the 0 and 1
// (100%) boundaries and just inside them.
func TestPercentileBoundaries(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	// p=0 clamps the rank to the first observation: the min.
	if got := h.Percentile(0); got != h.Min() {
		t.Fatalf("Percentile(0) = %d, want min %d", got, h.Min())
	}
	// p=100 (and beyond) is exactly the max, not a bucket bound.
	if got := h.Percentile(100); got != 1000 {
		t.Fatalf("Percentile(100) = %d, want 1000", got)
	}
	if got := h.Percentile(200); got != 1000 {
		t.Fatalf("Percentile(200) = %d, want 1000", got)
	}
	// A tiny positive p still lands on the first observation.
	if got := h.Percentile(0.001); got != h.Min() {
		t.Fatalf("Percentile(0.001) = %d, want min %d", got, h.Min())
	}
	// Percentiles can never escape the observed [min, max] range even
	// when the bucket bound would (single wide bucket).
	var w Histogram
	w.Record(1 << 40)
	for _, p := range []float64{0, 50, 99.999, 100} {
		if got := w.Percentile(p); got != 1<<40 {
			t.Fatalf("single-value Percentile(%v) = %d, want %d", p, got, uint64(1)<<40)
		}
	}
}

// TestBucketsAccessor checks the exported raw-distribution view against
// a known recording.
func TestBucketsAccessor(t *testing.T) {
	var h Histogram
	if h.Buckets() != nil {
		t.Fatal("empty histogram must have no buckets")
	}
	h.Record(3)
	h.Record(3)
	h.Record(7)
	bs := h.Buckets()
	if len(bs) != 2 {
		t.Fatalf("got %d buckets, want 2", len(bs))
	}
	// Values below subBuckets are exact unit buckets.
	if bs[0].Upper != 3 || bs[0].Count != 2 || bs[1].Upper != 7 || bs[1].Count != 1 {
		t.Fatalf("buckets = %+v", bs)
	}
	// Ascending order and count conservation on a spread recording.
	var w Histogram
	total := uint64(0)
	for v := uint64(1); v < 1<<20; v = v*3 + 1 {
		w.Record(v)
		total++
	}
	var sum uint64
	prev := uint64(0)
	for i, b := range w.Buckets() {
		if i > 0 && b.Upper <= prev {
			t.Fatalf("bucket %d upper %d not ascending (prev %d)", i, b.Upper, prev)
		}
		prev = b.Upper
		sum += b.Count
	}
	if sum != total {
		t.Fatalf("bucket counts sum to %d, want %d", sum, total)
	}
}
