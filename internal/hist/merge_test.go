package hist

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// TestMergeConcurrentWorkers exercises the repo's per-worker histogram
// discipline at full tilt: workers record into private histograms and
// concurrently merge them into one shared result under a mutex (a
// Histogram is not itself concurrency-safe — the mutex is the
// contract, exactly how trace.Buf guards its wait histogram against
// live snapshot merges). The merged result must be bucket-for-bucket
// identical to recording every value serially.
func TestMergeConcurrentWorkers(t *testing.T) {
	const workers = 8
	const perWorker = 20000

	// Reference: all values through one histogram, serially.
	var ref Histogram
	values := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w + 1)))
		values[w] = make([]uint64, perWorker)
		for i := range values[w] {
			v := uint64(rng.Int63n(1 << 32))
			values[w][i] = v
			ref.Record(v)
		}
	}

	var (
		mu     sync.Mutex
		merged Histogram
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var h Histogram
			for _, v := range values[w] {
				h.Record(v)
			}
			// Concurrent merges into the shared histogram: the mutex is
			// what makes this safe, as in every per-worker call site.
			mu.Lock()
			merged.Merge(&h)
			mu.Unlock()
		}()
	}
	wg.Wait()

	if merged.Count() != ref.Count() {
		t.Fatalf("merged count = %d, want %d", merged.Count(), ref.Count())
	}
	if merged.Min() != ref.Min() || merged.Max() != ref.Max() {
		t.Fatalf("merged min/max = %d/%d, want %d/%d",
			merged.Min(), merged.Max(), ref.Min(), ref.Max())
	}
	if !reflect.DeepEqual(merged.Buckets(), ref.Buckets()) {
		t.Fatal("merged buckets differ from serial reference")
	}
	for _, p := range StandardPercentiles {
		if got, want := merged.Percentile(p), ref.Percentile(p); got != want {
			t.Fatalf("P%v = %d after merge, want %d", p, got, want)
		}
	}
}

// Property: merging any partition of a value stream is equivalent to
// recording it whole, and the result's percentiles are monotone in p.
// Partition shape and values are both randomized by quick.Check.
func TestMergePartitionEquivalence(t *testing.T) {
	f := func(raw []uint32, cut uint8) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(cut)%len(raw) + 1 // split point in [1, len]
		var whole, left, right Histogram
		for i, v := range raw {
			whole.Record(uint64(v))
			if i < k {
				left.Record(uint64(v))
			} else {
				right.Record(uint64(v))
			}
		}
		left.Merge(&right)
		if left.Count() != whole.Count() ||
			left.Min() != whole.Min() || left.Max() != whole.Max() ||
			!reflect.DeepEqual(left.Buckets(), whole.Buckets()) {
			return false
		}
		prev := uint64(0)
		for p := 0.5; p <= 100; p += 0.5 {
			v := left.Percentile(p)
			if v < prev || v != whole.Percentile(p) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
