package hist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram stats not zero")
	}
}

func TestSingleValue(t *testing.T) {
	var h Histogram
	h.Record(1000)
	if h.Count() != 1 || h.Min() != 1000 || h.Max() != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	for _, p := range []float64{1, 50, 99, 99.999, 100} {
		if v := h.Percentile(p); v != 1000 {
			t.Fatalf("P%.3f = %d, want 1000 (single value)", p, v)
		}
	}
}

func TestSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < 16; v++ {
		h.Record(v)
	}
	if h.Min() != 0 || h.Max() != 15 {
		t.Fatal("min/max wrong for small values")
	}
	// Buckets below 16 are exact.
	if got := h.Percentile(50); got != 7 && got != 8 {
		t.Fatalf("P50 of 0..15 = %d", got)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	values := make([]uint64, 100000)
	for i := range values {
		v := uint64(rng.Intn(1_000_000)) + 1
		values[i] = v
		h.Record(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := values[int(p/100*float64(len(values)))-1]
		got := h.Percentile(p)
		lo := float64(exact) * 0.9
		hi := float64(exact) * 1.1
		if float64(got) < lo || float64(got) > hi {
			t.Fatalf("P%v = %d, exact %d (outside 10%%)", p, got, exact)
		}
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for v := uint64(1); v <= 100; v++ {
		a.Record(v)
	}
	for v := uint64(1000); v <= 2000; v += 10 {
		b.Record(v)
	}
	total := a.Count() + b.Count()
	a.Merge(&b)
	if a.Count() != total {
		t.Fatalf("merged count = %d, want %d", a.Count(), total)
	}
	if a.Min() != 1 || a.Max() != 2000 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != total {
		t.Fatal("merging empty changed count")
	}
	empty.Merge(&a)
	if empty.Count() != total || empty.Min() != 1 {
		t.Fatal("merge into empty lost state")
	}
}

func TestSnapshotShape(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 10000; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if len(s) != len(StandardPercentiles) || len(s) != len(PercentileLabels) {
		t.Fatal("snapshot length mismatch")
	}
	if s[0] != h.Min() {
		t.Fatal("snapshot[0] is not min")
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("snapshot not monotone: %v", s)
		}
	}
}

// Property: bucketUpper(bucketOf(v)) is within 6.25% above v (and never
// below v's bucket floor).
func TestBucketErrorBound(t *testing.T) {
	f := func(v uint64) bool {
		idx := bucketOf(v)
		up := bucketUpper(idx)
		if v < 16 {
			return up == v
		}
		return up >= v-(v>>subBits) && float64(up) <= float64(v)*1.07
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		h.Record(uint64(rng.Intn(1 << 30)))
	}
	prev := uint64(0)
	for p := 1.0; p <= 100; p += 0.5 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("P%v = %d < previous %d", p, v, prev)
		}
		prev = v
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) * 2654435761 % (1 << 24))
	}
}
