// Package hist provides a fixed-footprint logarithmic histogram for
// nanosecond latencies, supporting the percentile reporting of the
// paper's tail-latency study (Figure 12: min, 50%, 90%, 99%, 99.9%,
// 99.99%, 99.999%).
//
// Values are bucketed with a power-of-two mantissa scheme (16
// sub-buckets per octave, <= 6.25% relative error), the same idea as
// HdrHistogram at low resolution. Recording is allocation-free; one
// histogram per worker is merged after the run.
package hist

import "math/bits"

const (
	subBits    = 4
	subBuckets = 1 << subBits // per octave
	octaves    = 64 - subBits
	numBuckets = octaves * subBuckets
)

// Histogram counts values in logarithmic buckets. The zero value is an
// empty histogram. It is not safe for concurrent use; give each worker
// its own and Merge.
type Histogram struct {
	counts [numBuckets]uint64
	total  uint64
	min    uint64
	max    uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	msb := bits.Len64(v) - 1 // >= subBits
	sub := (v >> (uint(msb) - subBits)) & (subBuckets - 1)
	return (msb-subBits+1)*subBuckets + int(sub)
}

// bucketUpper returns a representative (upper-ish bound) value for a
// bucket index, the inverse of bucketOf up to bucket resolution.
func bucketUpper(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	octave := idx/subBuckets - 1 + subBits
	sub := uint64(idx % subBuckets)
	base := uint64(1) << uint(octave)
	return base | sub<<(uint(octave)-subBits) | (base>>subBits - 1)
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketOf(v)]++
	h.total++
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Min returns the smallest recorded value (0 if empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest recorded value (0 if empty).
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an upper bound for the p-th percentile
// (0 < p <= 100), with bucket resolution (<= 6.25% relative error).
func (h *Histogram) Percentile(p float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(p / 100 * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			u := bucketUpper(i)
			if u > h.max {
				return h.max
			}
			if u < h.min {
				return h.min
			}
			return u
		}
	}
	return h.max
}

// Mean returns the approximate mean of the recorded values.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		if c != 0 {
			sum += float64(bucketUpper(i)) * float64(c)
		}
	}
	return sum / float64(h.total)
}

// Bucket is one non-empty histogram bucket: the bucket's
// representative upper bound and its observation count.
type Bucket struct {
	Upper uint64
	Count uint64
}

// Buckets returns the non-empty buckets in ascending value order —
// the raw distribution, enough to re-plot or re-aggregate it outside
// the process (the JSON run reports embed exactly this).
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c != 0 {
			out = append(out, Bucket{Upper: bucketUpper(i), Count: c})
		}
	}
	return out
}

// StandardPercentiles are the columns of the paper's Figure 12.
var StandardPercentiles = []float64{0, 50, 90, 99, 99.9, 99.99, 99.999}

// PercentileLabels renders Figure 12's column headers.
var PercentileLabels = []string{"min", "50%", "90%", "99%", "99.9%", "99.99%", "99.999%"}

// Snapshot returns the values at StandardPercentiles (index 0 = min).
func (h *Histogram) Snapshot() []uint64 {
	out := make([]uint64, len(StandardPercentiles))
	out[0] = h.min
	for i := 1; i < len(StandardPercentiles); i++ {
		out[i] = h.Percentile(StandardPercentiles[i])
	}
	return out
}
