package core

import (
	"fmt"
	"sync/atomic"
)

// MaxQNodes is the capacity of the default queue-node ID space: the
// lock word dedicates QIDBits bits to the ID of the latest exclusive
// requester, so at most 1<<QIDBits queue nodes can exist per Pool.
const MaxQNodes = 1 << QIDBits

// InvalidVersion is the sentinel stored in a queue node's version field
// while its owner is waiting in the queue. The predecessor grants the
// lock by overwriting it with the successor's version number.
const InvalidVersion = ^uint64(0)

// Queue-node request modes. Nodes reset to qModeEx (the classic OptiQL
// writer); AcquireShQueued marks its node qModeSh before swapping in,
// so a releasing holder can classify queued waiters and batch-grant a
// maximal prefix of compatible shared requesters in one pass.
const (
	qModeEx uint32 = iota
	qModeSh
)

// QNode is an MCS-style queue node used by queued OptiQL requesters.
// Unlike a classic MCS node it carries a version number instead of a
// granted flag: the predecessor passes the lock by storing the
// successor's (already incremented) version, which the successor later
// publishes on the lock word when it releases.
//
// Queue nodes are allocated from a Pool so that their array index can
// serve as the compact ID embedded in the 8-byte lock word.
//
// mode, gTail and shPend support queued-shared requesters (batch
// grants). mode is plain: the owner writes it before the Swap that
// publishes the node, and granters read it only after observing the
// node linked. gTail is plain for the same reason in the other
// direction: the granter writes it before the version grant-store, and
// only the node's owner reads it, after observing the grant. shPend is
// the group's outstanding-release count and lives only on the group
// tail, decremented by every member.
//
//optiql:cacheline
type QNode struct {
	next    atomic.Pointer[QNode]
	version atomic.Uint64

	id       uint32
	freeNext atomic.Uint32 // freelist link (index+1), managed by Pool
	pool     *Pool

	gTail  *QNode       // shared-group tail, set by the granter pre-grant
	shPend atomic.Int64 // outstanding group releases (tail node only)
	mode   uint32       // qModeEx | qModeSh, set by owner pre-Swap

	_ [12]byte // pad to a 64-byte cache line to avoid false sharing
}

// ID returns the node's pool-relative identifier, the value embedded in
// lock words while this node is the latest exclusive requester.
func (q *QNode) ID() uint32 { return q.id }

// Pool returns the pool this node was allocated from.
func (q *QNode) Pool() *Pool { return q.pool }

// reset prepares the node for a fresh acquisition.
func (q *QNode) reset() {
	q.next.Store(nil)
	q.version.Store(InvalidVersion)
	q.gTail = nil
	q.shPend.Store(0)
	q.mode = qModeEx
}

// Pool is a contiguous, pre-allocated array of queue nodes. The array
// index of a node is its ID, so translating between the 10-bit ID on
// the lock word and a usable pointer is a single bounds-checked index —
// the FOEDUS-style indirection described in Section 6.3 of the paper.
//
// Get and Put are safe for concurrent use; they run a tagged Treiber
// freelist over node indices.
type Pool struct {
	nodes []QNode
	// head encodes tag<<32 | (index+1); index 0 means "empty". The tag
	// increments on every pop to defeat ABA.
	head atomic.Uint64
}

// NewPool creates a pool with n queue nodes (1 <= n <= MaxQNodes).
func NewPool(n int) *Pool {
	if n < 1 || n > MaxQNodes {
		panic(fmt.Sprintf("core: pool size %d out of range [1, %d]", n, MaxQNodes))
	}
	p := &Pool{nodes: make([]QNode, n)}
	for i := range p.nodes {
		q := &p.nodes[i]
		q.id = uint32(i)
		q.pool = p
		q.freeNext.Store(uint32(i + 2)) // next index+1; last links to n+1
	}
	p.nodes[n-1].freeNext.Store(0)
	p.head.Store(1) // index 0 + 1
	return p
}

// Cap returns the number of queue nodes in the pool.
func (p *Pool) Cap() int { return len(p.nodes) }

// At translates a queue-node ID back to its node.
func (p *Pool) At(id uint32) *QNode { return &p.nodes[id] }

// Get pops a free queue node. It panics if the pool is exhausted,
// which indicates the application registered more concurrent lock
// holders than the pool was sized for (a configuration error, mirroring
// the fixed ID space of the C++ implementation).
func (p *Pool) Get() *QNode {
	q, ok := p.TryGet()
	if !ok {
		panic("core: queue-node pool exhausted")
	}
	return q
}

// TryGet pops a free queue node, reporting failure instead of
// panicking when the pool is exhausted.
func (p *Pool) TryGet() (*QNode, bool) {
	for {
		old := p.head.Load()
		idx := uint32(old)
		if idx == 0 {
			return nil, false
		}
		q := &p.nodes[idx-1]
		next := q.freeNext.Load()
		tag := (old >> 32) + 1
		if p.head.CompareAndSwap(old, tag<<32|uint64(next)) {
			q.reset()
			return q, true
		}
	}
}

// Put returns a queue node to the pool. The node must have been
// obtained from this pool and must not be in use by any lock.
func (p *Pool) Put(q *QNode) {
	if q.pool != p {
		panic("core: Put of foreign queue node")
	}
	for {
		old := p.head.Load()
		q.freeNext.Store(uint32(old))
		tag := (old >> 32) + 1
		if p.head.CompareAndSwap(old, tag<<32|uint64(q.id+1)) {
			return
		}
	}
}
