package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWordLayout(t *testing.T) {
	if QIDBits+VersionBits+2 != 64 {
		t.Fatalf("layout does not cover 64 bits: qid=%d version=%d", QIDBits, VersionBits)
	}
	if LockedBit&OpReadBit != 0 || StatusMask != LockedBit|OpReadBit {
		t.Fatal("status bits overlap or mask wrong")
	}
	if QIDMask&VersionMask != 0 || QIDMask&StatusMask != 0 || VersionMask&StatusMask != 0 {
		t.Fatal("fields overlap")
	}
	if LockedBit|OpReadBit|QIDMask|VersionMask != ^uint64(0) {
		t.Fatal("fields do not cover the word")
	}
}

func TestZeroValueUnlocked(t *testing.T) {
	var l OptiQL
	if l.IsLocked() {
		t.Fatal("zero-value lock reports locked")
	}
	v, ok := l.AcquireSh()
	if !ok || v != 0 {
		t.Fatalf("AcquireSh on fresh lock = (%d, %v), want (0, true)", v, ok)
	}
	if !l.ReleaseSh(v) {
		t.Fatal("validation failed with no concurrent writer")
	}
}

func TestAcquireReleaseIncrementsVersion(t *testing.T) {
	pool := NewPool(4)
	var l OptiQL
	for i := 1; i <= 5; i++ {
		q := pool.Get()
		l.AcquireEx(q)
		if !l.IsLocked() {
			t.Fatal("lock not marked locked after AcquireEx")
		}
		l.ReleaseEx(q)
		pool.Put(q)
		if l.IsLocked() {
			t.Fatal("lock still locked after ReleaseEx")
		}
		if got := l.Version(); got != uint64(i) {
			t.Fatalf("after %d acquire/release cycles version = %d", i, got)
		}
	}
}

func TestReaderFailsWhileLocked(t *testing.T) {
	pool := NewPool(4)
	var l OptiQL
	q := pool.Get()
	l.AcquireEx(q)
	if _, ok := l.AcquireSh(); ok {
		t.Fatal("reader admitted while lock exclusively held with window closed")
	}
	l.ReleaseEx(q)
	pool.Put(q)
}

func TestReaderValidationFailsAcrossWrite(t *testing.T) {
	pool := NewPool(4)
	var l OptiQL
	v, ok := l.AcquireSh()
	if !ok {
		t.Fatal("reader rejected on free lock")
	}
	q := pool.Get()
	l.AcquireEx(q)
	l.ReleaseEx(q)
	pool.Put(q)
	if l.ReleaseSh(v) {
		t.Fatal("validation passed although a writer intervened")
	}
}

// TestOpportunisticRead drives the exact handover scenario of Figure 4:
// T1 holds the lock, T2 queues, and a reader must be admitted during
// the window T1 opens on release — but its validation must fail once T2
// closes the window.
func TestOpportunisticRead(t *testing.T) {
	pool := NewPool(4)
	var l OptiQL
	q1, q2 := pool.Get(), pool.Get()

	l.AcquireEx(q1)

	t2Granted := make(chan struct{})
	t2May := make(chan struct{})
	go func() {
		l.AcquireEx(q2) // queues behind q1
		close(t2Granted)
		<-t2May
		l.ReleaseEx(q2)
	}()

	// Wait until T2 has swapped itself onto the word.
	var s Spinner
	for (l.Word()&QIDMask)>>qidShift != uint64(q2.ID()) {
		s.Spin()
	}
	// While T1 still holds the lock with the window closed, readers
	// must be rejected.
	if _, ok := l.AcquireSh(); ok {
		t.Fatal("reader admitted before handover window opened")
	}

	// T1 releases: the window opens, then T2 is granted and closes it.
	// Capture the windowed word by polling from this goroutine is racy
	// against T2's close, so instead verify the protocol pieces:
	l.ReleaseEx(q1)
	<-t2Granted

	// After T2 closed the window, readers are rejected again.
	if _, ok := l.AcquireSh(); ok {
		t.Fatal("reader admitted after window closed")
	}
	close(t2May)
	var s2 Spinner
	for l.IsLocked() {
		s2.Spin()
	}
	if _, ok := l.AcquireSh(); !ok {
		t.Fatal("reader rejected on free lock after queue drained")
	}
	pool.Put(q1)
	pool.Put(q2)
}

// TestOpportunisticWindowAdmitsReader holds the window open with AOR so
// the admission path itself can be observed deterministically.
func TestOpportunisticWindowAdmitsReader(t *testing.T) {
	pool := NewPool(4)
	var l OptiQL
	q1, q2 := pool.Get(), pool.Get()

	l.AcquireEx(q1)
	done := make(chan struct{})
	go func() {
		l.AcquireExAOR(q2) // leaves window open after grant
		close(done)
	}()
	var s Spinner
	for (l.Word()&QIDMask)>>qidShift != uint64(q2.ID()) {
		s.Spin()
	}
	l.ReleaseEx(q1) // opens window, grants q2
	<-done

	// Window is still open: readers are admitted even though q2 owns
	// the lock.
	v, ok := l.AcquireSh()
	if !ok {
		t.Fatal("reader rejected during AOR window")
	}
	if v&StatusMask != LockedBit|OpReadBit {
		t.Fatalf("window word status = %x", v&StatusMask)
	}
	if !l.ReleaseSh(v) {
		t.Fatal("validation failed with window still open and no writes")
	}

	// Closing the window invalidates the snapshot.
	l.CloseWindow()
	if l.ReleaseSh(v) {
		t.Fatal("validation passed across CloseWindow")
	}
	if _, ok := l.AcquireSh(); ok {
		t.Fatal("reader admitted after CloseWindow")
	}
	l.ReleaseEx(q2)
	pool.Put(q1)
	pool.Put(q2)
}

// TestNoOpportunisticRead checks the NOR variant never opens a window.
func TestNoOpportunisticRead(t *testing.T) {
	pool := NewPool(4)
	var l OptiQL
	q1, q2 := pool.Get(), pool.Get()

	l.AcquireEx(q1)
	granted := make(chan struct{})
	release := make(chan struct{})
	go func() {
		l.AcquireEx(q2)
		close(granted)
		<-release
		l.ReleaseExNoOR(q2)
	}()
	var s Spinner
	for (l.Word()&QIDMask)>>qidShift != uint64(q2.ID()) {
		s.Spin()
	}
	l.ReleaseExNoOR(q1)
	<-granted
	if l.Word()&OpReadBit != 0 {
		t.Fatal("NOR release opened the opportunistic window")
	}
	close(release)
	var s2 Spinner
	for l.IsLocked() {
		s2.Spin()
	}
	pool.Put(q1)
	pool.Put(q2)
}

// TestABAVersionOnWord reproduces the ABA scenario of Section 5.3: a
// writer repeatedly executing its critical section must not let a
// reader validate across two different critical sections.
func TestABAVersionOnWord(t *testing.T) {
	pool := NewPool(4)
	var l OptiQL
	counter := 0

	qa, qb := pool.Get(), pool.Get()

	// Round 1: writer W (qa) runs with a queued successor (qb), so its
	// release opens the opportunistic window rather than resetting the
	// word.
	l.AcquireEx(qa)
	counter = 1
	done := make(chan struct{})
	go func() {
		l.AcquireExAOR(qb) // keep the window open so the reader snapshot is taken mid-handover
		close(done)
	}()
	var s Spinner
	for (l.Word()&QIDMask)>>qidShift != uint64(qb.ID()) {
		s.Spin()
	}
	l.ReleaseEx(qa)
	<-done

	// Reader R snapshots during the window and reads counter == 1.
	rv, ok := l.AcquireSh()
	if !ok {
		t.Fatal("reader not admitted during window")
	}
	got := counter

	// W's second round: qb closes the window, increments the counter.
	l.CloseWindow()
	counter = 2
	l.ReleaseEx(qb)

	// R validates: must fail, because the version on the word moved on
	// even though the status bits alone went through the same states.
	if l.ReleaseSh(rv) {
		t.Fatalf("reader validated across two critical sections (read %d, now %d)", got, counter)
	}
	pool.Put(qa)
	pool.Put(qb)
}

func TestUpgrade(t *testing.T) {
	pool := NewPool(4)
	var l OptiQL
	q := pool.Get()

	v, _ := l.AcquireSh()
	if !l.Upgrade(v, q) {
		t.Fatal("upgrade failed on quiescent lock")
	}
	if !l.IsLocked() {
		t.Fatal("upgrade did not lock")
	}
	// A second upgrade with the stale version must fail.
	q2 := pool.Get()
	if l.Upgrade(v, q2) {
		t.Fatal("stale upgrade succeeded")
	}
	l.ReleaseEx(q)
	if got, want := l.Version(), (v&VersionMask)+1; got != want {
		t.Fatalf("version after upgrade+release = %d, want %d", got, want)
	}
	// Upgrading from a locked snapshot must never steal the lock.
	l.AcquireEx(q)
	lockedSnap := l.Word()
	if l.Upgrade(lockedSnap, q2) {
		t.Fatal("upgrade stole a held lock")
	}
	l.ReleaseEx(q)
	pool.Put(q)
	pool.Put(q2)
}

// TestUpgradeQueuesSuccessors checks that writers arriving after an
// upgrade queue behind the upgrader, per Section 6.2.
func TestUpgradeQueuesSuccessors(t *testing.T) {
	pool := NewPool(4)
	var l OptiQL
	q, qw := pool.Get(), pool.Get()

	v, _ := l.AcquireSh()
	if !l.Upgrade(v, q) {
		t.Fatal("upgrade failed")
	}
	granted := make(chan struct{})
	go func() {
		l.AcquireEx(qw)
		close(granted)
		l.ReleaseEx(qw)
	}()
	var s Spinner
	for (l.Word()&QIDMask)>>qidShift != uint64(qw.ID()) {
		s.Spin()
	}
	select {
	case <-granted:
		t.Fatal("successor granted while upgrader held the lock")
	default:
	}
	l.ReleaseEx(q)
	<-granted
	var s2 Spinner
	for l.IsLocked() {
		s2.Spin()
	}
	pool.Put(q)
	pool.Put(qw)
}

// TestMutualExclusion hammers the lock from many goroutines and checks
// the classic non-atomic counter invariant.
func TestMutualExclusion(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
	)
	pool := NewPool(goroutines)
	var l OptiQL
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := pool.Get()
			defer pool.Put(q)
			for i := 0; i < iters; i++ {
				l.AcquireEx(q)
				counter++
				l.ReleaseEx(q)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d: mutual exclusion violated", counter, goroutines*iters)
	}
	if got := l.Version(); got != uint64(goroutines*iters) {
		t.Fatalf("version = %d, want %d: a release lost its increment", got, goroutines*iters)
	}
}

// TestMutualExclusionNOR repeats the invariant for the NOR release path.
func TestMutualExclusionNOR(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
	)
	pool := NewPool(goroutines)
	var l OptiQL
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := pool.Get()
			defer pool.Put(q)
			for i := 0; i < iters; i++ {
				l.AcquireEx(q)
				counter++
				l.ReleaseExNoOR(q)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

// TestReadersNeverObserveTornState runs concurrent writers updating a
// multi-word structure and readers that must either fail validation or
// observe a consistent snapshot.
func TestReadersNeverObserveTornState(t *testing.T) {
	const writers, readers, iters = 4, 4, 3000
	pool := NewPool(writers)
	var l OptiQL
	var a, b atomic.Uint64 // invariant under the lock: a == b

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := pool.Get()
			defer pool.Put(q)
			for i := 0; i < iters; i++ {
				l.AcquireEx(q)
				a.Add(1)
				b.Add(1)
				l.ReleaseEx(q)
			}
		}()
	}
	var torn atomic.Uint64
	var successes atomic.Uint64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v, ok := l.AcquireSh()
				if !ok {
					continue
				}
				av := a.Load()
				bv := b.Load()
				if l.ReleaseSh(v) {
					successes.Add(1)
					if av != bv {
						torn.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d validated reads observed torn state", torn.Load())
	}
	if successes.Load() == 0 {
		t.Log("note: no read validated; acceptable under extreme scheduling but unusual")
	}
}

// Property: for any sequence of acquire/release counts, the version
// advances by exactly the number of completed critical sections.
func TestVersionCountsCriticalSections(t *testing.T) {
	pool := NewPool(2)
	f := func(n uint8) bool {
		var l OptiQL
		q := pool.Get()
		defer pool.Put(q)
		for i := 0; i < int(n%64); i++ {
			l.AcquireEx(q)
			l.ReleaseEx(q)
		}
		return l.Version() == uint64(n%64) && !l.IsLocked()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AcquireSh admits a reader iff the status bits are not
// exactly LOCKED, for arbitrary words.
func TestAcquireShAdmissionRule(t *testing.T) {
	f := func(word uint64) bool {
		var l OptiQL
		l.word.Store(word)
		v, ok := l.AcquireSh()
		wantOK := word&StatusMask != LockedBit
		return v == word && ok == wantOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVersionWraparound(t *testing.T) {
	pool := NewPool(2)
	var l OptiQL
	l.word.Store(VersionMask) // one increment from wrapping
	q := pool.Get()
	defer pool.Put(q)
	l.AcquireEx(q)
	l.ReleaseEx(q)
	if got := l.Version(); got != 0 {
		t.Fatalf("version after wrap = %d, want 0", got)
	}
	if l.IsLocked() {
		t.Fatal("wrap left the lock locked")
	}
}

func BenchmarkAcquireReleaseExUncontended(b *testing.B) {
	pool := NewPool(2)
	var l OptiQL
	q := pool.Get()
	defer pool.Put(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.AcquireEx(q)
		l.ReleaseEx(q)
	}
}

func BenchmarkOptimisticRead(b *testing.B) {
	var l OptiQL
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := l.AcquireSh()
		_ = l.ReleaseSh(v)
	}
}
