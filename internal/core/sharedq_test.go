package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"
)

func TestQNodeStaysOneCacheLine(t *testing.T) {
	if got := unsafe.Sizeof(QNode{}); got != 64 {
		t.Fatalf("QNode is %d bytes, want exactly one 64-byte cache line", got)
	}
}

// qid extracts the queue-node ID field from a raw lock word.
func qid(w uint64) uint32 { return uint32((w & QIDMask) >> qidShift) }

// waitQID spins until the lock word carries the given queue-node ID,
// i.e. until that node's owner has executed its tail Swap. This is how
// the tests build queues with a deterministic waiter order.
func waitQID(t *testing.T, l *OptiQL, id uint32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for qid(l.Word()) != id {
		if time.Now().After(deadline) {
			t.Fatalf("lock word never carried qid %d (word=%#x)", id, l.Word())
		}
	}
}

func TestSharedQueuedFreeAcquireOR(t *testing.T) {
	pool := NewPool(8)
	var l OptiQL

	// Advance the version so "carried unchanged" is distinguishable
	// from zero.
	w := pool.Get()
	l.AcquireEx(w)
	l.ReleaseEx(w)
	pool.Put(w)
	v0 := l.Version()
	if v0 != 1 {
		t.Fatalf("setup version = %d, want 1", v0)
	}

	q := pool.Get()
	if h := l.AcquireShQueued(q, true); h {
		t.Fatal("free acquire reported handover")
	}
	// Opportunistic window re-opened: lock-free readers are admitted
	// alongside the queued-shared holder, and their snapshots validate.
	snap, ok := l.AcquireSh()
	if !ok {
		t.Fatal("optimistic reader rejected during opportunistic shared hold")
	}
	if !l.ReleaseSh(snap) {
		t.Fatal("optimistic snapshot failed validation with no writer about")
	}
	if fan := l.ReleaseShQueued(q, true); fan != 0 {
		t.Fatalf("uncontended shared release fanout = %d, want 0", fan)
	}
	pool.Put(q)
	if l.IsLocked() {
		t.Fatal("lock still locked after shared release")
	}
	if got := l.Version(); got != v0 {
		t.Fatalf("shared hold changed the version: %d -> %d", v0, got)
	}
}

func TestSharedQueuedFreeAcquireNOR(t *testing.T) {
	pool := NewPool(8)
	var l OptiQL
	q := pool.Get()
	l.AcquireShQueued(q, false)
	if _, ok := l.AcquireSh(); ok {
		t.Fatal("optimistic reader admitted during NOR shared hold")
	}
	if fan := l.ReleaseShQueued(q, false); fan != 0 {
		t.Fatalf("uncontended NOR shared release fanout = %d, want 0", fan)
	}
	pool.Put(q)
	if l.IsLocked() {
		t.Fatal("lock still locked after NOR shared release")
	}
}

// TestBatchGrantSharedPrefix builds the queue W0 | S1 S2 W1 S3 with a
// deterministic order and pins the release-to-many contract: W0's
// single release grants exactly the compatible prefix {S1, S2} (fanout
// 2, both awake concurrently, each exactly once), never past the
// incompatible W1; the group's drain hands W1 the lock (fanout 1); W1's
// release grants S3. Version discipline: shared groups carry the
// version unchanged, writers increment it.
func TestBatchGrantSharedPrefix(t *testing.T) {
	pool := NewPool(8)
	var l OptiQL

	w0 := pool.Get()
	l.AcquireEx(w0) // W0 holds; its release publishes version 1.

	type waiter struct {
		q       *QNode
		granted atomic.Int32 // times the acquire returned
		release chan struct{}
		done    chan int // fanout of this waiter's own release
		shared  bool
	}
	mk := func(shared bool) *waiter {
		return &waiter{q: pool.Get(), release: make(chan struct{}), done: make(chan int, 1), shared: shared}
	}
	s1, s2, wx, s3 := mk(true), mk(true), mk(false), mk(true)

	var wg sync.WaitGroup
	start := func(w *waiter) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if w.shared {
				l.AcquireShQueued(w.q, true)
				w.granted.Add(1)
				<-w.release
				w.done <- l.ReleaseShQueued(w.q, true)
			} else {
				l.AcquireEx(w.q)
				w.granted.Add(1)
				<-w.release
				w.done <- l.ReleaseEx(w.q)
			}
		}()
		waitQID(t, &l, w.q.id) // the waiter has swapped in; queue order fixed
	}
	start(s1)
	start(s2)
	start(wx)
	start(s3)

	if fan := l.ReleaseEx(w0); fan != 2 {
		t.Fatalf("W0 release fanout = %d, want 2 (batch grant of S1+S2)", fan)
	}
	pool.Put(w0)

	// Both shared waiters must be awake concurrently, before either
	// releases; the exclusive waiter and the reader behind it must not.
	deadline := time.Now().Add(5 * time.Second)
	for s1.granted.Load() != 1 || s2.granted.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("batch grant incomplete: s1=%d s2=%d", s1.granted.Load(), s2.granted.Load())
		}
	}
	time.Sleep(10 * time.Millisecond)
	if g := wx.granted.Load(); g != 0 {
		t.Fatalf("exclusive waiter granted (%d times) past an incompatible boundary", g)
	}
	if g := s3.granted.Load(); g != 0 {
		t.Fatalf("shared waiter behind a writer granted (%d times) too early", g)
	}

	// Non-tail member release is local; the tail drains the group and
	// hands over to W1.
	close(s1.release)
	if fan := <-s1.done; fan != 0 {
		t.Fatalf("non-tail member release fanout = %d, want 0", fan)
	}
	close(s2.release)
	if fan := <-s2.done; fan != 1 {
		t.Fatalf("group-tail release fanout = %d, want 1 (handover to W1)", fan)
	}

	for wx.granted.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("W1 never granted after group drain")
		}
	}
	if g := s3.granted.Load(); g != 0 {
		t.Fatal("S3 granted while W1 holds")
	}
	close(wx.release)
	if fan := <-wx.done; fan != 1 {
		t.Fatalf("W1 release fanout = %d, want 1 (handover to S3)", fan)
	}
	close(s3.release)
	if fan := <-s3.done; fan != 0 {
		t.Fatalf("tail-of-queue shared release fanout = %d, want 0", fan)
	}
	wg.Wait()

	for _, w := range []*waiter{s1, s2, wx, s3} {
		if g := w.granted.Load(); g != 1 {
			t.Fatalf("a waiter woke %d times, want exactly once", g)
		}
		pool.Put(w.q)
	}
	if l.IsLocked() {
		t.Fatal("lock still locked after full drain")
	}
	// W0 published 1, the group carried it, W1 published 2, S3 carried it.
	if got := l.Version(); got != 2 {
		t.Fatalf("final version = %d, want 2", got)
	}
}

// TestQueuedSharedMutualExclusion stresses random mixes of queued
// writers and queued-shared readers and asserts the invariants the
// batch grant must preserve: no reader overlaps a writer, writers never
// overlap each other, and readers genuinely run concurrently (a batch
// grant admits more than one at once somewhere in the run).
func TestQueuedSharedMutualExclusion(t *testing.T) {
	const (
		workers = 8
		iters   = 2000
	)
	pool := NewPool(workers)
	var l OptiQL
	var writers, readers atomic.Int32
	var maxReaders atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			q := pool.Get()
			defer pool.Put(q)
			rng := seed*0x9e3779b97f4a7c15 + 1
			for i := 0; i < iters; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if rng&3 == 0 { // 25% writers
					l.AcquireEx(q)
					if writers.Add(1) != 1 || readers.Load() != 0 {
						t.Error("writer overlapped another holder")
					}
					writers.Add(-1)
					l.ReleaseEx(q)
				} else {
					l.AcquireShQueued(q, true)
					if writers.Load() != 0 {
						t.Error("reader overlapped a writer")
					}
					r := readers.Add(1)
					for {
						m := maxReaders.Load()
						if r <= m || maxReaders.CompareAndSwap(m, r) {
							break
						}
					}
					readers.Add(-1)
					l.ReleaseShQueued(q, true)
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if l.IsLocked() {
		t.Fatal("lock still locked after stress")
	}
	if maxReaders.Load() < 2 {
		t.Logf("note: readers never overlapped (max concurrency %d); batch grants untested by this run", maxReaders.Load())
	}
}
