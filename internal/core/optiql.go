package core

import "sync/atomic"

// Lock-word layout (Figure 3a of the paper).
const (
	// QIDBits is the width of the queue-node ID field; it bounds the
	// number of queue nodes (and hence concurrent exclusive requesters)
	// per pool at 1<<QIDBits.
	QIDBits = 10
	// VersionBits is the width of the version field available to
	// optimistic readers before wrap-around.
	VersionBits = 64 - 2 - QIDBits

	// LockedBit is set while the lock is granted (or being granted) to
	// an exclusive requester.
	LockedBit = uint64(1) << 63
	// OpReadBit is set, together with LockedBit, while the opportunistic
	// read window between two writers is open.
	OpReadBit = uint64(1) << 62

	qidShift = VersionBits
	// QIDMask extracts the queue-node ID field from a lock word.
	QIDMask = ((uint64(1) << QIDBits) - 1) << qidShift
	// VersionMask extracts the version field from a lock word.
	VersionMask = (uint64(1) << VersionBits) - 1
	// StatusMask extracts both status bits.
	StatusMask = LockedBit | OpReadBit
)

// OptiQL is the optimistic queuing lock. The zero value is an unlocked
// lock at version zero; it occupies exactly 8 bytes, so indexes that
// embed an 8-byte optimistic lock in their node headers can adopt it
// without layout changes.
//
// Readers use AcquireSh/ReleaseSh and never write to the word. Writers
// use AcquireEx/ReleaseEx and must supply a QNode allocated from the
// Pool associated with the lock's users. Mixing queue nodes from
// different pools on the same lock is a programming error: the ID on
// the word would translate through the wrong array.
type OptiQL struct {
	word atomic.Uint64
}

// Word returns the raw lock word, mainly for diagnostics and tests.
func (l *OptiQL) Word() uint64 { return l.word.Load() }

// Version returns the version field of the current lock word.
func (l *OptiQL) Version() uint64 { return l.word.Load() & VersionMask }

// IsLocked reports whether the word currently has the locked bit set.
func (l *OptiQL) IsLocked() bool { return l.word.Load()&LockedBit != 0 }

// AcquireSh begins an optimistic read (Algorithm 2). It returns the
// lock-word snapshot to be passed to ReleaseSh for validation, and
// whether the reader may proceed. A reader proceeds when the lock is
// free, or when it is held but the opportunistic read window is open
// (both status bits set). It performs exactly the work of a centralized
// optimistic lock: one load, one mask, one compare.
func (l *OptiQL) AcquireSh() (v uint64, ok bool) {
	v = l.word.Load()
	return v, v&StatusMask != LockedBit
}

// ReleaseSh validates an optimistic read begun with AcquireSh: it
// succeeds iff the lock word is bit-for-bit unchanged, meaning no
// writer was granted the lock (and no opportunistic window opened or
// closed) since the snapshot was taken.
func (l *OptiQL) ReleaseSh(v uint64) bool {
	return l.word.Load() == v
}

// AcquireEx acquires the lock in exclusive mode (Algorithm 3, lines
// 1-11). It blocks until the lock is granted; on return the
// opportunistic read window is closed and the caller may modify the
// protected data. qnode must come from the pool shared by all users of
// this lock and must not be in use.
//
// The returned handover flag reports whether the grant arrived via
// queue handover (after local spinning behind a predecessor) rather
// than by taking the free lock directly. It is already computed by the
// acquire protocol, so exposing it adds no work to the path; the
// observability layer splits its exclusive-acquire counters on it.
func (l *OptiQL) AcquireEx(qnode *QNode) (handover bool) {
	if l.acquireQueue(qnode) {
		// Lock granted via handover: close the opportunistic read
		// window and clear the stale version bits (line 11).
		l.word.And(^(OpReadBit | VersionMask))
		return true
	}
	return false
}

// AcquireExAOR is the "adjustable opportunistic read" variant (Section
// 5.3): it acquires the lock but leaves the opportunistic read window
// open, admitting readers until the caller invokes CloseWindow. The
// caller MUST call CloseWindow before modifying the protected data.
// The handover flag is as for AcquireEx.
func (l *OptiQL) AcquireExAOR(qnode *QNode) (handover bool) {
	return l.acquireQueue(qnode)
}

// CloseWindow closes the opportunistic read window left open by
// AcquireExAOR. Readers that snapshotted the word during the window and
// validate after this point fail, exactly as with the non-adjustable
// protocol. It is a no-op (but safe) if the window is already closed.
func (l *OptiQL) CloseWindow() {
	l.word.And(^(OpReadBit | VersionMask))
}

// acquireQueue runs the common acquire path and reports whether the
// lock arrived via queue handover (true) or was taken free (false).
func (l *OptiQL) acquireQueue(qnode *QNode) (handover bool) {
	qnode.reset()
	// Record ourselves as the latest requester: locked bit on,
	// opportunistic read off, version bits zeroed (line 2).
	prev := l.word.Swap(LockedBit | uint64(qnode.id)<<qidShift)
	if prev&LockedBit == 0 {
		// The lock was free: we own it. Carry the version forward
		// (line 4, masking off the stale queue-node ID of the previous
		// holder); it is published on release.
		qnode.version.Store(((prev & VersionMask) + 1) & VersionMask)
		return false
	}
	// A predecessor holds the lock. Link behind it (line 7) and spin
	// locally on our own version field (lines 8-9).
	pred := qnode.pool.At(uint32((prev & QIDMask) >> qidShift))
	pred.next.Store(qnode)
	var s Spinner
	for qnode.version.Load() == InvalidVersion {
		s.Spin()
	}
	return true
}

// ReleaseEx releases the lock (Algorithm 3, lines 13-23), opening the
// opportunistic read window while handing over to a queued successor.
// qnode must be the node passed to the matching AcquireEx. The return
// value is the handover fanout: 0 when the word was CASed back to the
// unlocked state, 1 for a single exclusive successor, and k >= 1 when a
// maximal prefix of k queued-shared waiters was batch-granted.
func (l *OptiQL) ReleaseEx(qnode *QNode) int {
	return l.releaseEx(qnode, true)
}

// ReleaseExNoOR releases the lock without opening the opportunistic
// read window — the OptiQL-NOR variant evaluated in the paper. Readers
// can then only be admitted while the queue is completely empty. The
// return value is the handover fanout, as for ReleaseEx.
func (l *OptiQL) ReleaseExNoOR(qnode *QNode) int {
	return l.releaseEx(qnode, false)
}

func (l *OptiQL) releaseEx(qnode *QNode, opportunistic bool) int {
	version := qnode.version.Load()
	if qnode.next.Load() == nil {
		// No known successor: try to return the word to the unlocked
		// state carrying the new version (lines 14-16). The CAS only
		// succeeds if we are still the latest requester.
		if l.word.CompareAndSwap(LockedBit|uint64(qnode.id)<<qidShift, version) {
			return 0
		}
	}
	if opportunistic {
		// A successor exists (or is arriving): open the opportunistic
		// read window and publish our version so readers can validate
		// (line 18). The queue-node ID stays on the word so later
		// writers keep queueing.
		l.word.Or(OpReadBit | version)
	}
	// Wait for the successor to finish linking (lines 20-21), then
	// grant (line 23) — to the whole compatible prefix at once.
	var s Spinner
	for qnode.next.Load() == nil {
		s.Spin()
	}
	return l.grantChain(qnode, version)
}

// grantChain hands the lock from the releasing holder (whose published
// version is v) to its queued successor(s). A single exclusive waiter
// receives v+1, exactly the classic one-at-a-time handover. When the
// successor is a queued-shared waiter, the release-to-many path walks
// the maximal prefix of consecutive shared waiters and grants all of
// them in one pass: they share the lock concurrently at version v
// (readers do not modify the protected data, so the version must not
// advance), the prefix tail carries the group's outstanding-release
// count, and the first incompatible (exclusive) waiter — if any — stays
// queued behind the group, to be granted v+1 when the group drains.
//
// The walked prefix is frozen: a node writes its mode before the Swap
// that publishes it, links never change once stored, and no waiter in
// the prefix can leave the queue before being granted. Group state
// (gTail on every member, shPend on the tail) is fully published before
// the first grant-store; each member's next pointer is read before its
// own grant, because a granted member may release and recycle its node
// immediately.
//
// Returns the number of waiters granted.
func (l *OptiQL) grantChain(h *QNode, v uint64) int {
	first := h.next.Load()
	if first.mode != qModeSh {
		first.version.Store((v + 1) & VersionMask)
		return 1
	}
	tail := first
	count := 1
	for {
		nx := tail.next.Load()
		if nx == nil || nx.mode != qModeSh {
			break
		}
		tail = nx
		count++
	}
	tail.shPend.Store(int64(count))
	for m := first; m != tail; m = m.next.Load() {
		m.gTail = tail
	}
	tail.gTail = tail
	for m := first; ; {
		nx := m.next.Load()
		m.version.Store(v)
		if m == tail {
			break
		}
		m = nx
	}
	return count
}

// AcquireShQueued acquires the lock in queued-shared mode: a
// pessimistic reader that, instead of spinning on optimistic
// validation failures, takes a place in the FIFO queue and is granted
// — together with every compatible neighbour — by a releasing holder's
// single batch grant. Shared holders do not modify the protected data,
// so the version is carried through unchanged and optimistic readers
// validating across a shared hold still succeed.
//
// opportunistic controls whether taking the free lock re-opens the
// opportunistic read window (OptiQL/AOR variants); pass false for NOR.
// The handover flag reports a queue wait, as for AcquireEx.
func (l *OptiQL) AcquireShQueued(qnode *QNode, opportunistic bool) (handover bool) {
	qnode.reset()
	qnode.mode = qModeSh
	prev := l.word.Swap(LockedBit | uint64(qnode.id)<<qidShift)
	if prev&LockedBit == 0 {
		// The lock was free: hold it as a shared group of one, carrying
		// the version unchanged. Re-opening the opportunistic window
		// keeps admitting lock-free readers alongside us; their
		// snapshots stay valid for as long as no writer swaps in.
		v := prev & VersionMask
		qnode.gTail = qnode
		qnode.shPend.Store(1)
		if opportunistic {
			l.word.Or(OpReadBit | v)
		}
		qnode.version.Store(v)
		return false
	}
	pred := qnode.pool.At(uint32((prev & QIDMask) >> qidShift))
	pred.next.Store(qnode)
	var s Spinner
	for qnode.version.Load() == InvalidVersion {
		s.Spin()
	}
	return true
}

// ReleaseShQueued releases a queued-shared hold taken with
// AcquireShQueued. Non-tail group members simply check out of the
// group; the tail waits for the group to drain and then performs the
// structural handover (CAS the word free, or batch-grant the next
// compatible prefix). opportunistic must match the acquire. Returns
// the handover fanout, as for ReleaseEx (always 0 for non-tail
// members).
func (l *OptiQL) ReleaseShQueued(qnode *QNode, opportunistic bool) int {
	tail := qnode.gTail
	if tail != qnode {
		tail.shPend.Add(-1)
		return 0
	}
	// Group tail: wait until every member (ourselves included) has
	// checked out, then hand over on the group's behalf.
	qnode.shPend.Add(-1)
	var s Spinner
	for qnode.shPend.Load() != 0 {
		s.Spin()
	}
	v := qnode.version.Load()
	if qnode.next.Load() == nil {
		// Shared holds publish the version they inherited, unchanged.
		expected := LockedBit | uint64(qnode.id)<<qidShift
		if opportunistic {
			expected |= OpReadBit | v
		}
		if l.word.CompareAndSwap(expected, v) {
			return 0
		}
	}
	for qnode.next.Load() == nil {
		s.Spin()
	}
	return l.grantChain(qnode, v)
}

// BumpVersion advances the version field of an unlocked word, failing
// validation for any reader still holding an older snapshot. Callers
// use it when the memory the lock protects is recycled (type-stable
// node reuse). While the lock is held the CAS is skipped: the holder's
// own release publishes an incremented version anyway, and the word
// must not be disturbed mid-protocol. Racing acquirers are unaffected —
// their Swap wins over this CAS, and a racing Upgrade simply fails its
// snapshot comparison and restarts, which is the desired outcome.
func (l *OptiQL) BumpVersion() {
	for {
		v := l.word.Load()
		if v&LockedBit != 0 {
			return
		}
		if l.word.CompareAndSwap(v, (v+1)&VersionMask) {
			return
		}
	}
}

// Upgrade attempts to convert an optimistic read with snapshot v into
// exclusive ownership, the try-lock style interface added for ART
// (Section 6.2). It CASes the word from the unlocked snapshot to the
// locked state carrying qnode's ID, so later writers still queue behind
// qnode. It fails (returning false) if the snapshot is stale or the
// lock is held; the caller is expected to restart its operation.
func (l *OptiQL) Upgrade(v uint64, qnode *QNode) bool {
	if v&LockedBit != 0 {
		// Never steal: a snapshot taken during an opportunistic window
		// is readable but not upgradable.
		return false
	}
	qnode.reset()
	if !l.word.CompareAndSwap(v, LockedBit|uint64(qnode.id)<<qidShift) {
		return false
	}
	qnode.version.Store(((v & VersionMask) + 1) & VersionMask)
	return true
}
