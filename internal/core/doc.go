// Package core implements OptiQL, the optimistic queuing lock from
// "OptiQL: Robust Optimistic Locking for Memory-Optimized Indexes"
// (Shi, Yan, Wang; SIGMOD 2024), together with the queue-node pool it
// depends on.
//
// OptiQL extends the classic MCS queue lock with optimistic read
// capabilities. Writers form a FIFO queue and spin locally on their own
// queue node, which keeps throughput stable under heavy contention and
// guarantees fairness among writers. Readers never write to shared
// memory: they snapshot the 8-byte lock word, run their critical
// section, and validate that the word is unchanged — exactly like a
// centralized optimistic lock. A third mechanism, opportunistic read,
// re-admits readers during writer-to-writer lock handover, the window
// in which the protected data is consistent but a pure queue lock would
// appear permanently held.
//
// The lock state is a single 8-byte word:
//
//	bit 63        locked      — the lock is granted (or being granted) to a writer
//	bit 62        opread      — opportunistic read window is open
//	bits 52..61   queue-node ID of the most recent exclusive requester
//	bits 0..51    version number used by optimistic readers for validation
//
// Storing a 10-bit queue-node ID instead of a 64-bit pointer is what
// lets the word also carry a version number. Queue nodes therefore live
// in a contiguous, pre-allocated Pool whose array index doubles as the
// node ID (Section 6.3 of the paper).
package core
