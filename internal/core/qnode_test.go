package core

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewPoolBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxQNodes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewPool(%d) did not panic", n)
				}
			}()
			NewPool(n)
		}()
	}
	if p := NewPool(MaxQNodes); p.Cap() != MaxQNodes {
		t.Fatalf("Cap = %d", p.Cap())
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := NewPool(3)
	var got []*QNode
	for i := 0; i < 3; i++ {
		q, ok := p.TryGet()
		if !ok {
			t.Fatalf("TryGet %d failed with free nodes", i)
		}
		got = append(got, q)
	}
	if _, ok := p.TryGet(); ok {
		t.Fatal("TryGet succeeded on exhausted pool")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Get on exhausted pool did not panic")
			}
		}()
		p.Get()
	}()
	for _, q := range got {
		p.Put(q)
	}
	if _, ok := p.TryGet(); !ok {
		t.Fatal("TryGet failed after Put")
	}
}

func TestPoolIDsAndTranslation(t *testing.T) {
	p := NewPool(8)
	seen := map[uint32]bool{}
	var qs []*QNode
	for i := 0; i < 8; i++ {
		q := p.Get()
		if seen[q.ID()] {
			t.Fatalf("duplicate ID %d", q.ID())
		}
		seen[q.ID()] = true
		if p.At(q.ID()) != q {
			t.Fatal("At(ID) did not translate back")
		}
		if q.Pool() != p {
			t.Fatal("Pool backref wrong")
		}
		qs = append(qs, q)
	}
	for _, q := range qs {
		p.Put(q)
	}
}

func TestPoolForeignPut(t *testing.T) {
	p1, p2 := NewPool(2), NewPool(2)
	q := p1.Get()
	defer p1.Put(q)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign Put did not panic")
		}
	}()
	p2.Put(q)
}

// TestPoolConcurrentGetPut stresses the tagged Treiber freelist: no
// node may ever be handed to two holders at once.
func TestPoolConcurrentGetPut(t *testing.T) {
	const goroutines, iters = 8, 5000
	p := NewPool(goroutines) // tight: every node constantly cycles
	var wg sync.WaitGroup
	holders := make([]int32, p.Cap())
	var mu sync.Mutex
	fail := false
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := p.Get()
				mu.Lock()
				holders[q.ID()]++
				if holders[q.ID()] != 1 {
					fail = true
				}
				holders[q.ID()]--
				mu.Unlock()
				p.Put(q)
			}
		}()
	}
	wg.Wait()
	if fail {
		t.Fatal("a queue node was held by two goroutines at once")
	}
}

// Property: get/put sequences never lose capacity.
func TestPoolCapacityConserved(t *testing.T) {
	p := NewPool(4)
	f := func(ops []bool) bool {
		var held []*QNode
		for _, get := range ops {
			if get {
				if q, ok := p.TryGet(); ok {
					held = append(held, q)
				}
			} else if len(held) > 0 {
				p.Put(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		for _, q := range held {
			p.Put(q)
		}
		// All 4 nodes must be retrievable again.
		var all []*QNode
		for i := 0; i < 4; i++ {
			q, ok := p.TryGet()
			if !ok {
				return false
			}
			all = append(all, q)
		}
		if _, ok := p.TryGet(); ok {
			return false
		}
		for _, q := range all {
			p.Put(q)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
