package core

import "runtime"

// spinBudget is the number of busy iterations a waiter burns before it
// starts yielding to the Go scheduler. On a machine with spare hardware
// threads the busy phase keeps handover latency low; once the budget is
// exhausted the waiter yields every iteration so that lock holders (and
// the writer that will grant us the lock) can run even when goroutines
// outnumber CPUs.
const spinBudget = 64

// Spinner implements bounded busy-waiting with scheduler cooperation.
// The zero value is ready to use; call Spin in a wait loop.
type Spinner struct {
	n int
}

// Spin performs one wait iteration: a cheap busy pause while under
// budget, a runtime.Gosched once the budget is exhausted.
func (s *Spinner) Spin() {
	if s.n < spinBudget {
		s.n++
		procPause()
		return
	}
	runtime.Gosched()
}

// Reset restores the busy-spin budget, for reuse across waits.
func (s *Spinner) Reset() { s.n = 0 }

// procPause is a tiny delay standing in for the PAUSE instruction: a
// few calls to a function the compiler is not allowed to inline (and
// therefore cannot elide).
func procPause() {
	for i := 0; i < 4; i++ {
		pause()
	}
}

//go:noinline
func pause() {}
