// contention: the robustness story of Figure 1, live.
//
// The demo hammers a handful of locks (the paper's "high contention"
// microbenchmark) with pure writers under each lock scheme and prints
// the throughput side by side, then repeats the same comparison on the
// B+-tree with a skewed update workload. Centralized locks (OptLock,
// TTS) burn cycles retrying CAS on hot words; the queue-based schemes
// (OptiQL, MCS) hand the lock over in FIFO order and degrade
// gracefully.
//
//	go run ./examples/contention
package main

import (
	"fmt"
	"time"

	"optiql/internal/bench"
	"optiql/internal/workload"
)

func main() {
	const threads = 8
	const duration = 300 * time.Millisecond

	fmt.Println("-- lock microbenchmark: pure writers, 5 locks (high contention) --")
	for _, scheme := range []string{"OptLock", "TTS", "OptiQL", "OptiQL-NOR", "MCS", "MCS-RW", "pthread"} {
		res, err := bench.RunMicro(bench.MicroConfig{
			Scheme:   scheme,
			Threads:  threads,
			Locks:    bench.HighContention,
			Duration: duration,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-11s %8.2f Mops\n", scheme, res.Mops())
	}

	fmt.Println("-- B+-tree: update-only, self-similar 0.2 (skewed) --")
	for _, scheme := range []string{"OptLock", "OptiQL", "OptiQL-NOR"} {
		res, err := bench.RunIndex(bench.IndexConfig{
			Index:        "btree",
			Scheme:       scheme,
			Threads:      threads,
			Records:      100_000,
			Distribution: "selfsimilar",
			KeySpace:     workload.Dense,
			Mix:          workload.UpdateOnly,
			Duration:     duration,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %-11s %8.2f Mops\n", scheme, res.Mops())
	}
	fmt.Println("On multicore hardware the gap widens with the thread count;")
	fmt.Println("see cmd/experiments for the full Figure 1/6/9 sweeps.")
}
