// artdemo: the adaptive radix tree under sparse keys.
//
// It loads sparse 64-bit keys (forcing lazy expansion), shows how the
// node population adapts (Node4/16/48/256 counts), then concentrates
// updates on a hot key to trigger contention expansion — the
// Section 6.2 mechanism that materializes a lazily-expanded path so
// updaters can queue on a last-level OptiQL lock instead of
// upgrade-retrying.
//
//	go run ./examples/artdemo
package main

import (
	"fmt"
	"sync"
	"time"

	"optiql/internal/art"
	"optiql/internal/core"
	"optiql/internal/locks"
	"optiql/internal/workload"
)

func main() {
	tree := art.MustNew(art.Config{
		Scheme:          locks.MustByName("OptiQL"),
		ExpandThreshold: 4, // demo-friendly threshold (paper default: 1024)
		SampleInverse:   1, // count every upgrade failure
	})
	pool := core.NewPool(core.MaxQNodes)

	// Load sparse keys: almost every key collapses into a lazily
	// expanded leaf close to the root.
	const records = 200_000
	c := locks.NewCtx(pool, 8)
	for i := uint64(0); i < records; i++ {
		tree.Insert(c, workload.Sparse.Key(i), i)
	}
	n4, n16, n48, n256, leaves := tree.NodeCounts()
	fmt.Printf("loaded %d sparse keys\n", tree.Len())
	fmt.Printf("node population: Node4=%d Node16=%d Node48=%d Node256=%d leaves=%d\n",
		n4, n16, n48, n256, leaves)
	fmt.Printf("inner nodes per key: %.3f (lazy expansion at work)\n",
		float64(n4+n16+n48+n256)/float64(leaves))

	// Point reads and a miss.
	k := workload.Sparse.Key(12345)
	if v, ok := tree.Lookup(c, k); ok {
		fmt.Printf("lookup(%#x) = %d\n", k, v)
	}
	if _, ok := tree.Lookup(c, 0xDEAD_BEEF_0000_0001); !ok {
		fmt.Println("absent key correctly missed")
	}
	c.Close()

	// Hammer one hot key with updates from many goroutines: upgrade
	// failures accumulate on its owner node until contention expansion
	// materializes the path.
	hot := workload.Sparse.Key(777)
	const workers = 8
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc := locks.NewCtx(pool, 8)
			defer wc.Close()
			for i := 0; i < 200_000; i++ {
				tree.Update(wc, hot, uint64(i))
			}
		}()
	}
	wg.Wait()
	fmt.Printf("hot-key hammer: %d updates in %v, contention expansions: %d\n",
		workers*200_000, time.Since(start).Round(time.Millisecond), tree.Expansions())

	c2 := locks.NewCtx(pool, 8)
	defer c2.Close()
	if v, ok := tree.Lookup(c2, hot); !ok {
		panic("hot key lost")
	} else {
		fmt.Printf("hot key final value: %d, tree still holds %d keys\n", v, tree.Len())
	}
}
