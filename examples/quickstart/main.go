// Quickstart: the OptiQL lock API in one file.
//
// It demonstrates the three access modes of the lock — optimistic
// reads that never write shared memory, queued exclusive writers, and
// opportunistic reads that sneak in between writer handovers — on a
// single shared counter pair.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"optiql/internal/core"
)

func main() {
	// One pool of queue nodes serves every OptiQL lock in the process;
	// its array index doubles as the 10-bit ID stored on lock words.
	pool := core.NewPool(64)

	var lock core.OptiQL // 8 bytes, zero value ready
	var a, b uint64      // protected invariant: a == b

	const writers = 4
	const writesPerWriter = 50_000

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qnode := pool.Get() // one queue node per concurrent acquisition
			defer pool.Put(qnode)
			for i := 0; i < writesPerWriter; i++ {
				lock.AcquireEx(qnode) // FIFO queue, local spinning
				a++
				b++
				lock.ReleaseEx(qnode) // opens the opportunistic window for the next writer
			}
		}()
	}

	// A reader validates instead of blocking: snapshot the lock word,
	// read, and check the word is unchanged. No queue node needed.
	var consistent, torn, rejected atomic.Uint64
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for consistent.Load() < 100_000 {
			v, ok := lock.AcquireSh()
			if !ok {
				rejected.Add(1) // writer held, window closed: retry
				continue
			}
			x, y := a, b
			if lock.ReleaseSh(v) { // validation
				consistent.Add(1)
				if x != y {
					torn.Add(1) // would mean the protocol is broken
				}
			}
		}
	}()

	wg.Wait()
	rg.Wait()

	fmt.Printf("final counters: a=%d b=%d (want %d)\n", a, b, writers*writesPerWriter)
	fmt.Printf("validated reads: %d, torn: %d, rejected attempts: %d\n",
		consistent.Load(), torn.Load(), rejected.Load())
	fmt.Printf("lock version (completed critical sections): %d\n", lock.Version())
	if torn.Load() != 0 || a != b {
		panic("invariant violated")
	}
}
