// kvstore: a concurrent ordered key-value store on the OptiQL B+-tree.
//
// It models the OLTP setting the paper's introduction motivates: many
// worker threads serving point reads, updates, inserts and small range
// scans over a shared memory-optimized index, with a skewed (80/20)
// access pattern. At the end it prints per-operation statistics and
// verifies the store against a sequential replay.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"optiql/internal/btree"
	"optiql/internal/core"
	"optiql/internal/locks"
	"optiql/internal/workload"
)

// Store is a thin, threadsafe KV facade over the B+-tree; each worker
// registers once to obtain its Session (carrying the queue-node Ctx).
type Store struct {
	tree *btree.Tree
	pool *core.Pool
}

// Session is a per-worker handle; not safe for concurrent use.
type Session struct {
	s *Store
	c *locks.Ctx
}

// NewStore creates a store protected by the given locking scheme.
func NewStore(scheme string) *Store {
	return &Store{
		tree: btree.MustNew(btree.Config{Scheme: locks.MustByName(scheme)}),
		pool: core.NewPool(core.MaxQNodes),
	}
}

// Open registers a worker session.
func (s *Store) Open() *Session { return &Session{s: s, c: locks.NewCtx(s.pool, 8)} }

// Close releases the session's queue nodes.
func (se *Session) Close() { se.c.Close() }

// Get returns the value for key.
func (se *Session) Get(key uint64) (uint64, bool) { return se.s.tree.Lookup(se.c, key) }

// Put inserts or overwrites key.
func (se *Session) Put(key, val uint64) { se.s.tree.Insert(se.c, key, val) }

// Delete removes key.
func (se *Session) Delete(key uint64) bool { return se.s.tree.Delete(se.c, key) }

// Range returns up to n pairs with keys >= from.
func (se *Session) Range(from uint64, n int) []btree.KV {
	return se.s.tree.Scan(se.c, from, n, nil)
}

func main() {
	const (
		workers  = 8
		records  = 100_000
		duration = 500 * time.Millisecond
	)
	store := NewStore("OptiQL")

	// Preload.
	load := store.Open()
	for i := uint64(0); i < records; i++ {
		load.Put(i+1, i)
	}
	load.Close()
	fmt.Printf("preloaded %d records (tree height %d, fanout %d)\n",
		store.tree.Len(), store.tree.Height(), store.tree.Fanout())

	var stats [5]atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	dist := workload.NewSelfSimilar(records, 0.2)
	mix := workload.Mix{LookupPct: 60, UpdatePct: 20, InsertPct: 10, DeletePct: 5, ScanPct: 5}

	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := store.Open()
			defer sess.Close()
			rng := workload.NewRNG(uint64(w) + 1)
			insertKey := uint64(records) + uint64(w)<<40
			for !stop.Load() {
				op := mix.Draw(rng)
				key := dist.Next(rng) + 1
				switch op {
				case workload.OpLookup:
					sess.Get(key)
				case workload.OpUpdate:
					sess.Put(key, rng.Uint64())
				case workload.OpInsert:
					insertKey++
					sess.Put(insertKey, insertKey)
				case workload.OpDelete:
					sess.Delete(key)
				case workload.OpScan:
					sess.Range(key, 16)
				}
				stats[op].Add(1)
			}
		}()
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	var total uint64
	for op := range stats {
		n := stats[op].Load()
		total += n
		fmt.Printf("  %-7s %12d ops\n", workload.OpKind(op), n)
	}
	fmt.Printf("total: %d ops in %v (%.2f Mops)\n",
		total, duration, float64(total)/duration.Seconds()/1e6)

	// Consistency audit: every surviving pair must be readable and the
	// scan order strictly ascending.
	audit := store.Open()
	defer audit.Close()
	prev := uint64(0)
	count := 0
	for {
		batch := audit.Range(prev, 1000)
		if len(batch) == 0 {
			break
		}
		for _, kv := range batch {
			if kv.Key < prev {
				panic("scan order violated")
			}
			if v, ok := audit.Get(kv.Key); !ok || v != kv.Value {
				panic("scan/get mismatch")
			}
			prev = kv.Key
			count++
		}
		prev++
	}
	fmt.Printf("audit: %d keys verified, store consistent (Len=%d)\n", count, store.tree.Len())
}
