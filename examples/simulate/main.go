// simulate: watch the robustness story on the simulated multicore.
//
// This machine may have too few cores to exhibit parallel cacheline
// contention, so this example uses internal/sim — the deterministic
// discrete-event model of the lock protocols over MESI-style cache
// costs — to show what Figure 1/6 of the paper measures: centralized
// optimistic locks collapse as cores contend on one cacheline, while
// OptiQL's queue plateaus; and opportunistic read keeps readers alive
// where a plain queue lock starves them.
//
//	go run ./examples/simulate
package main

import (
	"fmt"

	"optiql/internal/sim"
)

func main() {
	fmt.Println("-- exclusive-lock throughput on one contended lock (ops/kcycle) --")
	fmt.Printf("%8s  %8s  %8s  %8s\n", "threads", "OptLock", "OptiQL", "MCS")
	for _, th := range []int{1, 10, 20, 40, 80} {
		row := []float64{}
		for _, scheme := range []string{"OptLock", "OptiQL", "MCS"} {
			r, err := sim.Run(sim.Config{Scheme: scheme, Threads: th, Locks: 1})
			if err != nil {
				panic(err)
			}
			row = append(row, r.Throughput())
		}
		fmt.Printf("%8d  %8.2f  %8.2f  %8.2f\n", th, row[0], row[1], row[2])
	}
	fmt.Println("OptLock decays as every CAS re-fetches the hot line from more sharers;")
	fmt.Println("the queue locks hand over point-to-point and plateau.")

	fmt.Println()
	fmt.Println("-- reader success against a standing writer queue (Table 1) --")
	for _, scheme := range []string{"OptiQL-NOR", "OptiQL"} {
		r, err := sim.Run(sim.Config{
			Scheme: scheme, Threads: 80, Locks: 5, ReadPct: 50, Split: true,
			Cycles: 4_000_000,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-11s reader success %6.2f%%  (%7d reads completed)\n",
			scheme, r.ReadSuccessRate()*100, r.Reads)
	}
	fmt.Println("Without the opportunistic window, the word never looks free between")
	fmt.Println("writers and readers starve; OptiQL re-admits them at every handover.")
}
